#pragma once

/// \file rng.hpp
/// Deterministic pseudo-random generation.
///
/// All randomness in the library flows through Xoshiro256ss seeded explicitly
/// by the caller, so every experiment in the paper reproduction is exactly
/// repeatable.  std::mt19937 / std::uniform_int_distribution are avoided on
/// purpose: their outputs are not guaranteed identical across standard
/// library implementations, which would make recorded experiment outputs
/// platform-dependent.

#include <array>
#include <cstdint>
#include <span>
#include <utility>

namespace hdlock::util {

/// SplitMix64 — used to expand a single 64-bit seed into a full state.
/// Reference: Sebastiano Vigna, http://prng.di.unimi.it/splitmix64.c
class SplitMix64 {
public:
    explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

    constexpr std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// xoshiro256** 1.0 — the library-wide PRNG.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256ss {
public:
    using result_type = std::uint64_t;

    explicit Xoshiro256ss(std::uint64_t seed) noexcept;

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

    result_type operator()() noexcept;

    /// Unbiased uniform integer in [0, bound). Requires bound > 0.
    std::uint64_t next_below(std::uint64_t bound) noexcept;

    /// Uniform double in [0, 1).
    double next_double() noexcept;

    /// Standard normal deviate (Box-Muller, one value cached).
    double next_normal() noexcept;

    /// Normal deviate with the given mean / standard deviation.
    double next_normal(double mean, double stddev) noexcept { return mean + stddev * next_normal(); }

    /// Bernoulli draw with success probability p.
    bool next_bool(double p = 0.5) noexcept { return next_double() < p; }

    /// +1 with probability 1/2, otherwise -1.
    int next_sign() noexcept { return (operator()() & 1u) != 0 ? 1 : -1; }

    /// Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::span<T> values) noexcept {
        for (std::size_t i = values.size(); i > 1; --i) {
            const std::size_t j = static_cast<std::size_t>(next_below(i));
            using std::swap;
            swap(values[i - 1], values[j]);
        }
    }

private:
    std::array<std::uint64_t, 4> state_{};
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

/// FNV-1a over arbitrary bytes; used to derive per-input tie-break seeds so
/// that encoding is a deterministic function of its input (see
/// RecordEncoder::encode on sign(0) handling).
std::uint64_t fnv1a(std::span<const std::byte> bytes) noexcept;

/// Convenience overload hashing a span of trivially copyable values.
template <typename T>
std::uint64_t fnv1a_of(std::span<const T> values) noexcept {
    return fnv1a(std::as_bytes(values));
}

/// Mixes two 64-bit values into one (order-sensitive).
constexpr std::uint64_t hash_mix(std::uint64_t a, std::uint64_t b) noexcept {
    std::uint64_t z = a + 0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

}  // namespace hdlock::util
