#pragma once

/// \file matrix.hpp
/// Dense row-major matrix used for dataset storage.

#include <span>
#include <vector>

#include "util/error.hpp"

namespace hdlock::util {

template <typename T>
class Matrix {
public:
    Matrix() = default;

    Matrix(std::size_t rows, std::size_t cols, T fill = T{})
        : rows_(rows), cols_(cols), values_(rows * cols, fill) {}

    std::size_t rows() const noexcept { return rows_; }
    std::size_t cols() const noexcept { return cols_; }
    bool empty() const noexcept { return values_.empty(); }

    T& operator()(std::size_t r, std::size_t c) {
        HDLOCK_EXPECTS(r < rows_ && c < cols_, "Matrix: index out of range");
        return values_[r * cols_ + c];
    }

    const T& operator()(std::size_t r, std::size_t c) const {
        HDLOCK_EXPECTS(r < rows_ && c < cols_, "Matrix: index out of range");
        return values_[r * cols_ + c];
    }

    std::span<T> row(std::size_t r) {
        HDLOCK_EXPECTS(r < rows_, "Matrix: row out of range");
        return std::span<T>(values_).subspan(r * cols_, cols_);
    }

    std::span<const T> row(std::size_t r) const {
        HDLOCK_EXPECTS(r < rows_, "Matrix: row out of range");
        return std::span<const T>(values_).subspan(r * cols_, cols_);
    }

    std::span<T> data() noexcept { return values_; }
    std::span<const T> data() const noexcept { return values_; }

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<T> values_;
};

}  // namespace hdlock::util
