/// \file kernels_neon.cpp
/// The ARM NEON (Advanced SIMD) kernel backend: 128-bit words, vcntq_u8 +
/// the vpaddlq widening chain for population counts, veor/vand/vorr for the
/// carry-save steps, and vshlq_u32 with negative shift counts for the dense
/// plane unpack.
///
/// Advanced SIMD is architecturally baseline on AArch64, so unlike the x86
/// TUs this file needs no per-file -m flags — it simply self-gates on
/// __ARM_NEON and compiles to the nullptr stub elsewhere (x86 builds, or
/// 32-bit ARM without NEON).  Same ODR discipline as kernels_avx2.cpp:
/// everything except the vector-free neon_backend() accessor has internal
/// linkage, and scalar tails route through the baseline-compiled
/// kernels::detail helpers.

#include "util/kernels.hpp"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

namespace hdlock::util::kernels {

namespace {

void xor_into(Word* dst, const Word* a, const Word* b, std::size_t n) noexcept {
    std::size_t w = 0;
    for (; w + 2 <= n; w += 2) {
        vst1q_u64(dst + w, veorq_u64(vld1q_u64(a + w), vld1q_u64(b + w)));
    }
    for (; w < n; ++w) dst[w] = a[w] ^ b[w];
}

/// Per-lane popcount of a 128-bit vector, widened to two u64 partial sums.
uint64x2_t popcount_pairs(uint64x2_t v) noexcept {
    return vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(vreinterpretq_u8_u64(v)))));
}

std::size_t popcount(const Word* words, std::size_t n) noexcept {
    uint64x2_t acc = vdupq_n_u64(0);
    std::size_t w = 0;
    for (; w + 2 <= n; w += 2) {
        acc = vaddq_u64(acc, popcount_pairs(vld1q_u64(words + w)));
    }
    std::size_t total = static_cast<std::size_t>(vaddvq_u64(acc));
    for (; w < n; ++w) total += static_cast<std::size_t>(__builtin_popcountll(words[w]));
    return total;
}

std::size_t hamming(const Word* a, const Word* b, std::size_t n) noexcept {
    uint64x2_t acc = vdupq_n_u64(0);
    std::size_t w = 0;
    for (; w + 2 <= n; w += 2) {
        acc = vaddq_u64(acc, popcount_pairs(veorq_u64(vld1q_u64(a + w), vld1q_u64(b + w))));
    }
    std::size_t total = static_cast<std::size_t>(vaddvq_u64(acc));
    for (; w < n; ++w) total += static_cast<std::size_t>(__builtin_popcountll(a[w] ^ b[w]));
    return total;
}

/// sum = a ^ b ^ c.
uint64x2_t csa_sum(uint64x2_t a, uint64x2_t b, uint64x2_t c) noexcept {
    return veorq_u64(veorq_u64(a, b), c);
}

/// carry = (a&b) | ((a^b)&c) — the CSA carry of the portable kernels.
uint64x2_t csa_carry(uint64x2_t a, uint64x2_t b, uint64x2_t c) noexcept {
    return vorrq_u64(vandq_u64(a, b), vandq_u64(veorq_u64(a, b), c));
}

/// Loads the row operand: ya[w..w+2) or the fused bind ya ^ yb.
template <bool Fused>
uint64x2_t load_y(const Word* ya, const Word* yb, std::size_t w) noexcept {
    const uint64x2_t a = vld1q_u64(ya + w);
    if constexpr (!Fused) return a;
    return veorq_u64(a, vld1q_u64(yb + w));
}

template <bool Fused>
void csa_pair_impl(Word* ones, Word* carry, const Word* x, const Word* ya, const Word* yb,
                   std::size_t n) noexcept {
    std::size_t w = 0;
    for (; w + 2 <= n; w += 2) {
        const uint64x2_t o = vld1q_u64(ones + w);
        const uint64x2_t vx = vld1q_u64(x + w);
        const uint64x2_t y = load_y<Fused>(ya, yb, w);
        vst1q_u64(carry + w, csa_carry(o, vx, y));
        vst1q_u64(ones + w, csa_sum(o, vx, y));
    }
    for (; w < n; ++w) {
        const Word y = Fused ? ya[w] ^ yb[w] : ya[w];
        const Word u = ones[w] ^ x[w];
        carry[w] = (ones[w] & x[w]) | (u & y);
        ones[w] = u ^ y;
    }
}

void csa_pair(Word* ones, Word* carry, const Word* x, const Word* ya, const Word* yb,
              std::size_t n) noexcept {
    yb == nullptr ? csa_pair_impl<false>(ones, carry, x, ya, yb, n)
                  : csa_pair_impl<true>(ones, carry, x, ya, yb, n);
}

template <bool Fused>
void csa_quad_impl(Word* ones, Word* twos, const Word* twos_a, Word* fours_a, const Word* x,
                   const Word* ya, const Word* yb, std::size_t n) noexcept {
    std::size_t w = 0;
    for (; w + 2 <= n; w += 2) {
        const uint64x2_t o = vld1q_u64(ones + w);
        const uint64x2_t vx = vld1q_u64(x + w);
        const uint64x2_t y = load_y<Fused>(ya, yb, w);
        const uint64x2_t twos_b = csa_carry(o, vx, y);
        vst1q_u64(ones + w, csa_sum(o, vx, y));
        const uint64x2_t t = vld1q_u64(twos + w);
        const uint64x2_t ta = vld1q_u64(twos_a + w);
        vst1q_u64(fours_a + w, csa_carry(t, ta, twos_b));
        vst1q_u64(twos + w, csa_sum(t, ta, twos_b));
    }
    for (; w < n; ++w) {
        const Word y = Fused ? ya[w] ^ yb[w] : ya[w];
        const Word u = ones[w] ^ x[w];
        const Word twos_b = (ones[w] & x[w]) | (u & y);
        ones[w] = u ^ y;
        const Word u2 = twos[w] ^ twos_a[w];
        fours_a[w] = (twos[w] & twos_a[w]) | (u2 & twos_b);
        twos[w] = u2 ^ twos_b;
    }
}

void csa_quad(Word* ones, Word* twos, const Word* twos_a, Word* fours_a, const Word* x,
              const Word* ya, const Word* yb, std::size_t n) noexcept {
    yb == nullptr ? csa_quad_impl<false>(ones, twos, twos_a, fours_a, x, ya, yb, n)
                  : csa_quad_impl<true>(ones, twos, twos_a, fours_a, x, ya, yb, n);
}

template <bool Fused>
void csa_oct_impl(Word* ones, Word* twos, const Word* twos_a, Word* fours, const Word* fours_a,
                  Word* carry_out, const Word* x, const Word* ya, const Word* yb,
                  std::size_t n) noexcept {
    std::size_t w = 0;
    for (; w + 2 <= n; w += 2) {
        const uint64x2_t o = vld1q_u64(ones + w);
        const uint64x2_t vx = vld1q_u64(x + w);
        const uint64x2_t y = load_y<Fused>(ya, yb, w);
        const uint64x2_t twos_b = csa_carry(o, vx, y);
        vst1q_u64(ones + w, csa_sum(o, vx, y));
        const uint64x2_t t = vld1q_u64(twos + w);
        const uint64x2_t ta = vld1q_u64(twos_a + w);
        const uint64x2_t fours_b = csa_carry(t, ta, twos_b);
        vst1q_u64(twos + w, csa_sum(t, ta, twos_b));
        const uint64x2_t f = vld1q_u64(fours + w);
        const uint64x2_t fa = vld1q_u64(fours_a + w);
        vst1q_u64(carry_out + w, csa_carry(f, fa, fours_b));
        vst1q_u64(fours + w, csa_sum(f, fa, fours_b));
    }
    for (; w < n; ++w) {
        const Word y = Fused ? ya[w] ^ yb[w] : ya[w];
        const Word u = ones[w] ^ x[w];
        const Word twos_b = (ones[w] & x[w]) | (u & y);
        ones[w] = u ^ y;
        const Word u2 = twos[w] ^ twos_a[w];
        const Word fours_b = (twos[w] & twos_a[w]) | (u2 & twos_b);
        twos[w] = u2 ^ twos_b;
        const Word u3 = fours[w] ^ fours_a[w];
        carry_out[w] = (fours[w] & fours_a[w]) | (u3 & fours_b);
        fours[w] = u3 ^ fours_b;
    }
}

void csa_oct(Word* ones, Word* twos, const Word* twos_a, Word* fours, const Word* fours_a,
             Word* carry_out, const Word* x, const Word* ya, const Word* yb,
             std::size_t n) noexcept {
    yb == nullptr
        ? csa_oct_impl<false>(ones, twos, twos_a, fours, fours_a, carry_out, x, ya, yb, n)
        : csa_oct_impl<true>(ones, twos, twos_a, fours, fours_a, carry_out, x, ya, yb, n);
}

/// Dense plane unpack, the 4-lane analogue of the AVX2 srlv scheme: spread
/// each plane word across sixteen int32x4 vectors with vshlq_u32 negative
/// (= right) shifts, mask to the bit, weight by the plane, accumulate.
void unpack_planes(const Word* planes, std::size_t n_words, std::size_t n_planes,
                   std::int32_t* accumulator) noexcept {
    const uint32x4_t one = vdupq_n_u32(1);
    int32x4_t shifts[8];
    for (int v = 0; v < 8; ++v) {
        const std::int32_t lanes[4] = {-(v * 4 + 0), -(v * 4 + 1), -(v * 4 + 2), -(v * 4 + 3)};
        shifts[v] = vld1q_s32(lanes);
    }
    for (std::size_t w = 0; w < n_words; ++w) {
        const Word* plane = planes + w * n_planes;
        int32x4_t counts[16];
        for (int v = 0; v < 16; ++v) counts[v] = vdupq_n_s32(0);
        for (std::size_t p = 0; p < n_planes; ++p) {
            const Word word = plane[p];
            if (word == 0) continue;
            const uint32x4_t lo = vdupq_n_u32(static_cast<std::uint32_t>(word));
            const uint32x4_t hi = vdupq_n_u32(static_cast<std::uint32_t>(word >> 32));
            const int32x4_t weight_shift = vdupq_n_s32(static_cast<std::int32_t>(p));
            for (int v = 0; v < 8; ++v) {
                const uint32x4_t bits_lo = vandq_u32(vshlq_u32(lo, shifts[v]), one);
                const uint32x4_t bits_hi = vandq_u32(vshlq_u32(hi, shifts[v]), one);
                counts[v] = vaddq_s32(
                    counts[v], vreinterpretq_s32_u32(vshlq_u32(bits_lo, weight_shift)));
                counts[v + 8] = vaddq_s32(
                    counts[v + 8], vreinterpretq_s32_u32(vshlq_u32(bits_hi, weight_shift)));
            }
        }
        std::int32_t* out = accumulator + w * 64;
        for (int v = 0; v < 16; ++v) {
            vst1q_s32(out + v * 4, vaddq_s32(vld1q_s32(out + v * 4), counts[v]));
        }
    }
}

void csa_rows(Word* ones, Word* twos, Word* fours, Word* carry_out, const Word* const* rows,
              std::size_t n) noexcept {
    const Word* r0 = rows[0];
    const Word* r1 = rows[1];
    const Word* r2 = rows[2];
    const Word* r3 = rows[3];
    const Word* r4 = rows[4];
    const Word* r5 = rows[5];
    const Word* r6 = rows[6];
    const Word* r7 = rows[7];
    std::size_t w = 0;
    for (; w + 2 <= n; w += 2) {
        // Same dataflow as the scalar csa_rows_words tree.
        uint64x2_t o = vld1q_u64(ones + w);
        const uint64x2_t x0 = vld1q_u64(r0 + w);
        const uint64x2_t x1 = vld1q_u64(r1 + w);
        const uint64x2_t twos_a = csa_carry(o, x0, x1);
        o = csa_sum(o, x0, x1);
        const uint64x2_t x2 = vld1q_u64(r2 + w);
        const uint64x2_t x3 = vld1q_u64(r3 + w);
        const uint64x2_t twos_b = csa_carry(o, x2, x3);
        o = csa_sum(o, x2, x3);
        uint64x2_t t = vld1q_u64(twos + w);
        const uint64x2_t fours_a = csa_carry(t, twos_a, twos_b);
        t = csa_sum(t, twos_a, twos_b);
        const uint64x2_t x4 = vld1q_u64(r4 + w);
        const uint64x2_t x5 = vld1q_u64(r5 + w);
        const uint64x2_t twos_c = csa_carry(o, x4, x5);
        o = csa_sum(o, x4, x5);
        const uint64x2_t x6 = vld1q_u64(r6 + w);
        const uint64x2_t x7 = vld1q_u64(r7 + w);
        const uint64x2_t twos_d = csa_carry(o, x6, x7);
        o = csa_sum(o, x6, x7);
        const uint64x2_t fours_b = csa_carry(t, twos_c, twos_d);
        t = csa_sum(t, twos_c, twos_d);
        const uint64x2_t f = vld1q_u64(fours + w);
        vst1q_u64(carry_out + w, csa_carry(f, fours_a, fours_b));
        vst1q_u64(fours + w, csa_sum(f, fours_a, fours_b));
        vst1q_u64(ones + w, o);
        vst1q_u64(twos + w, t);
    }
    detail::csa_rows_words(ones, twos, fours, carry_out, rows, w, n);
}

template <bool Fused>
uint64x2_t load_row(const Word* const* rows_a, const Word* const* rows_b, std::size_t r,
                    std::size_t w) noexcept {
    const uint64x2_t a = vld1q_u64(rows_a[r] + w);
    if constexpr (!Fused) return a;
    return veorq_u64(a, vld1q_u64(rows_b[r] + w));
}

template <bool Fused>
void fused_hamming_scores_impl(const Word* const* rows_a, const Word* const* rows_b,
                               std::size_t n_rows, const Word* const* class_rows,
                               std::size_t n_classes, std::size_t n_words, TieResolver ties,
                               void* tie_ctx, std::uint64_t* distances) noexcept {
    const auto n_planes = static_cast<std::size_t>(64 - __builtin_clzll(n_rows));
    const Word threshold = n_rows / 2;
    const bool can_tie = (n_rows % 2) == 0 && ties != nullptr;
    std::size_t w = 0;
    for (; w + 2 <= n_words; w += 2) {
        // Per two-word block: up to 16 count planes + ones/twos/fours + CSA
        // temps fit the 32-register NEON file.
        uint64x2_t planes[16];
        for (std::size_t p = 0; p < n_planes; ++p) planes[p] = vdupq_n_u64(0);
        uint64x2_t ones = vdupq_n_u64(0);
        uint64x2_t twos = vdupq_n_u64(0);
        uint64x2_t fours = vdupq_n_u64(0);
        std::size_t r = 0;
        for (; r + 8 <= n_rows; r += 8) {
            const uint64x2_t x0 = load_row<Fused>(rows_a, rows_b, r + 0, w);
            const uint64x2_t x1 = load_row<Fused>(rows_a, rows_b, r + 1, w);
            const uint64x2_t twos_a = csa_carry(ones, x0, x1);
            ones = csa_sum(ones, x0, x1);
            const uint64x2_t x2 = load_row<Fused>(rows_a, rows_b, r + 2, w);
            const uint64x2_t x3 = load_row<Fused>(rows_a, rows_b, r + 3, w);
            const uint64x2_t twos_b = csa_carry(ones, x2, x3);
            ones = csa_sum(ones, x2, x3);
            const uint64x2_t fours_a = csa_carry(twos, twos_a, twos_b);
            twos = csa_sum(twos, twos_a, twos_b);
            const uint64x2_t x4 = load_row<Fused>(rows_a, rows_b, r + 4, w);
            const uint64x2_t x5 = load_row<Fused>(rows_a, rows_b, r + 5, w);
            const uint64x2_t twos_c = csa_carry(ones, x4, x5);
            ones = csa_sum(ones, x4, x5);
            const uint64x2_t x6 = load_row<Fused>(rows_a, rows_b, r + 6, w);
            const uint64x2_t x7 = load_row<Fused>(rows_a, rows_b, r + 7, w);
            const uint64x2_t twos_d = csa_carry(ones, x6, x7);
            ones = csa_sum(ones, x6, x7);
            const uint64x2_t fours_b = csa_carry(twos, twos_c, twos_d);
            twos = csa_sum(twos, twos_c, twos_d);
            uint64x2_t carry = csa_carry(fours, fours_a, fours_b);
            fours = csa_sum(fours, fours_a, fours_b);
            for (std::size_t p = 3; p < n_planes; ++p) {
                const uint64x2_t sum = veorq_u64(planes[p], carry);
                carry = vandq_u64(planes[p], carry);
                planes[p] = sum;
            }
        }
        for (; r < n_rows; ++r) {
            const uint64x2_t x = load_row<Fused>(rows_a, rows_b, r, w);
            uint64x2_t carry = vandq_u64(ones, x);
            ones = veorq_u64(ones, x);
            const uint64x2_t c2 = vandq_u64(twos, carry);
            twos = veorq_u64(twos, carry);
            carry = vandq_u64(fours, c2);
            fours = veorq_u64(fours, c2);
            for (std::size_t p = 3; p < n_planes; ++p) {
                const uint64x2_t sum = veorq_u64(planes[p], carry);
                carry = vandq_u64(planes[p], carry);
                planes[p] = sum;
            }
        }
        const uint64x2_t carries[3] = {ones, twos, fours};
        for (std::size_t start = 0; start < 3; ++start) {
            uint64x2_t carry = carries[start];
            for (std::size_t p = start; p < n_planes; ++p) {
                const uint64x2_t sum = veorq_u64(planes[p], carry);
                carry = vandq_u64(planes[p], carry);
                planes[p] = sum;
            }
        }
        // Bit-sliced count > / == threshold, MSB plane first.
        uint64x2_t gt = vdupq_n_u64(0);
        uint64x2_t eq = vdupq_n_u64(~Word{0});
        for (std::size_t p = n_planes; p-- > 0;) {
            if (((threshold >> p) & 1u) != 0) {
                eq = vandq_u64(eq, planes[p]);
            } else {
                gt = vorrq_u64(gt, vandq_u64(eq, planes[p]));
                eq = vbicq_u64(eq, planes[p]);
            }
        }
        uint64x2_t query = gt;
        if (can_tie) {
            const Word eq0 = vgetq_lane_u64(eq, 0);
            const Word eq1 = vgetq_lane_u64(eq, 1);
            if ((eq0 | eq1) != 0) {
                const Word tie0 = eq0 == 0 ? 0 : (ties(tie_ctx, eq0, w + 0) & eq0);
                const Word tie1 = eq1 == 0 ? 0 : (ties(tie_ctx, eq1, w + 1) & eq1);
                query = vorrq_u64(query, vcombine_u64(vcreate_u64(tie0), vcreate_u64(tie1)));
            }
        }
        for (std::size_t c = 0; c < n_classes; ++c) {
            const uint64x2_t x = veorq_u64(query, vld1q_u64(class_rows[c] + w));
            distances[c] += static_cast<std::uint64_t>(vaddvq_u64(popcount_pairs(x)));
        }
    }
    detail::fused_hamming_words(rows_a, rows_b, n_rows, class_rows, n_classes, w, n_words, ties,
                                tie_ctx, distances);
}

void fused_hamming_scores(const Word* const* rows_a, const Word* const* rows_b,
                          std::size_t n_rows, const Word* const* class_rows,
                          std::size_t n_classes, std::size_t n_words, TieResolver ties,
                          void* tie_ctx, std::uint64_t* distances) noexcept {
    for (std::size_t c = 0; c < n_classes; ++c) distances[c] = 0;
    if (n_rows == 0) return;
    rows_b == nullptr
        ? fused_hamming_scores_impl<false>(rows_a, rows_b, n_rows, class_rows, n_classes,
                                           n_words, ties, tie_ctx, distances)
        : fused_hamming_scores_impl<true>(rows_a, rows_b, n_rows, class_rows, n_classes,
                                          n_words, ties, tie_ctx, distances);
}

constexpr KernelBackend kBackend{
    Backend::neon, "neon",   &xor_into, &popcount,      &hamming,  &csa_pair,
    &csa_quad,     &csa_oct, &unpack_planes, &csa_rows, &fused_hamming_scores,
};

}  // namespace

const KernelBackend* neon_backend() noexcept { return &kBackend; }

}  // namespace hdlock::util::kernels

#else  // not an AArch64 NEON target

namespace hdlock::util::kernels {

const KernelBackend* neon_backend() noexcept { return nullptr; }

}  // namespace hdlock::util::kernels

#endif
