#include "util/bitslice.hpp"

#include <algorithm>
#include <bit>

namespace hdlock::util {

ColumnCounter::ColumnCounter(std::size_t n_bits, std::size_t n_planes)
    : n_bits_(n_bits), n_words_(bits::word_count(n_bits)), n_planes_(n_planes) {
    HDLOCK_EXPECTS(n_bits > 0, "ColumnCounter: n_bits must be positive");
    HDLOCK_EXPECTS(n_planes >= 1 && n_planes <= 16, "ColumnCounter: n_planes out of range");
    planes_.assign(n_planes_ * n_words_, 0);
    flushed_.assign(n_bits_, 0);
}

void ColumnCounter::add(std::span<const bits::Word> row) {
    HDLOCK_EXPECTS(row.size() == n_words_, "ColumnCounter::add: row width mismatch");
    if (rows_in_planes_ == (std::size_t{1} << n_planes_) - 1) flush_planes_();
    // Carry-save addition of a 1-bit row across the planes: plane p holds bit
    // p of every column's running count.
    for (std::size_t w = 0; w < n_words_; ++w) {
        bits::Word carry = row[w];
        for (std::size_t p = 0; p < n_planes_ && carry != 0; ++p) {
            bits::Word& plane = planes_[p * n_words_ + w];
            const bits::Word sum = plane ^ carry;
            carry &= plane;
            plane = sum;
        }
    }
    ++rows_in_planes_;
    ++rows_added_;
}

void ColumnCounter::flush_planes_() {
    for (std::size_t p = 0; p < n_planes_; ++p) {
        const auto weight = static_cast<std::int32_t>(1u << p);
        for (std::size_t w = 0; w < n_words_; ++w) {
            bits::Word word = planes_[p * n_words_ + w];
            while (word != 0) {
                const auto bit = static_cast<std::size_t>(std::countr_zero(word));
                flushed_[w * bits::kWordBits + bit] += weight;
                word &= word - 1;
            }
        }
    }
    std::ranges::fill(planes_, bits::Word{0});
    rows_in_planes_ = 0;
}

void ColumnCounter::counts_into(std::span<std::int32_t> counts) {
    HDLOCK_EXPECTS(counts.size() == n_bits_, "ColumnCounter::counts_into: size mismatch");
    flush_planes_();
    std::copy(flushed_.begin(), flushed_.end(), counts.begin());
}

void ColumnCounter::bipolar_sums_into(std::span<std::int32_t> sums) {
    HDLOCK_EXPECTS(sums.size() == n_bits_, "ColumnCounter::bipolar_sums_into: size mismatch");
    flush_planes_();
    const auto n = static_cast<std::int32_t>(rows_added_);
    for (std::size_t j = 0; j < n_bits_; ++j) sums[j] = n - 2 * flushed_[j];
}

void ColumnCounter::reset() noexcept {
    std::ranges::fill(planes_, bits::Word{0});
    std::ranges::fill(flushed_, 0);
    rows_in_planes_ = 0;
    rows_added_ = 0;
}

void naive_accumulate(std::span<const bits::Word> row, std::size_t n_bits,
                      std::span<std::int32_t> counts) {
    HDLOCK_EXPECTS(counts.size() == n_bits, "naive_accumulate: size mismatch");
    for (std::size_t j = 0; j < n_bits; ++j) {
        counts[j] += bits::get_bit(row, j) ? 1 : 0;
    }
}

}  // namespace hdlock::util
