#include "util/bitslice.hpp"

#include <algorithm>
#include <string>

#include "util/kernels.hpp"

namespace hdlock::util {

namespace {
constexpr std::size_t kMinPlanes = 1;
constexpr std::size_t kMaxPlanes = 16;
// The 8-row reduction needs the planes to absorb weight-8 carries plus the
// settle-time residues; below this it falls back to row-at-a-time rippling.
constexpr std::size_t kGroupPlanes = 4;
// Upper bound on the row-weight the group registers can hold outside the
// planes when a group is settled: pending (1) + twos_a (2) + fours_a (4) +
// ones (1) + twos (2) + fours (4).
constexpr std::size_t kGroupSlack = 14;
}  // namespace

ColumnCounter::ColumnCounter(std::size_t n_bits, std::size_t n_planes)
    : n_bits_(n_bits),
      n_words_(bits::word_count(n_bits)),
      n_planes_(n_planes),
      grouped_(n_planes >= kGroupPlanes) {
    HDLOCK_EXPECTS(n_bits > 0, "ColumnCounter: n_bits must be positive");
    if (n_planes < kMinPlanes || n_planes > kMaxPlanes) {
        // A named configuration error rather than a contract macro: plane
        // counts reach here from user-facing knobs (scratch sizing, tests),
        // and n_planes == 0 in particular would otherwise underflow the
        // capacity math into silent nonsense.
        throw ConfigError("ColumnCounter: n_planes must be in [1, 16], got " +
                          std::to_string(n_planes));
    }
    planes_.assign(n_planes_ * n_words_, 0);
    flushed_.assign(n_bits_, 0);
    if (grouped_) {
        pending_.assign(n_words_, 0);
        ones_.assign(n_words_, 0);
        twos_a_.assign(n_words_, 0);
        twos_.assign(n_words_, 0);
        fours_a_.assign(n_words_, 0);
        fours_.assign(n_words_, 0);
        carry_.assign(n_words_, 0);
    }
}

std::size_t ColumnCounter::planes_for_rows(std::size_t rows) noexcept {
    std::size_t planes = kGroupPlanes;
    while (planes < kMaxPlanes && ((std::size_t{1} << planes) - 1) < rows + kGroupSlack) {
        ++planes;
    }
    return planes;
}

void ColumnCounter::accumulate_row_(const bits::Word* ya, const bits::Word* yb) {
    const std::size_t capacity = (std::size_t{1} << n_planes_) - 1;
    if (!grouped_) {
        if (planes_rows_ == capacity) flush_planes_();
        for (std::size_t w = 0; w < n_words_; ++w) {
            bits::Word carry = yb == nullptr ? ya[w] : ya[w] ^ yb[w];
            bits::Word* plane = planes_.data() + w * n_planes_;
            for (std::size_t p = 0; p < n_planes_ && carry != 0; ++p) {
                const bits::Word sum = plane[p] ^ carry;
                carry &= plane[p];
                plane[p] = sum;
            }
        }
        ++planes_rows_;
        ++rows_added_;
        return;
    }

    // Harley–Seal 8-row pipeline.  A carry-save adder step
    //   CSA(carry, sum, x, y):  u = sum^x; carry = (sum&x)|(u&y); sum = u^y
    // folds two unit-weight inputs into `sum` and one double-weight carry.
    // Rows pair through ones_, pairs through twos_, quads through fours_;
    // only one weight-8 carry per 8 rows ever touches the planes.  Each
    // phase is one whole-array kernel call on the active SIMD backend; the
    // fused add_xor bind (yb != nullptr) happens inside the kernels.
    const kernels::KernelBackend& kernel = kernels::active();
    group_dirty_ = true;
    switch (phase_) {
        case 0:
        case 2:
        case 4:
        case 6:  // buffer the odd row until its pair arrives
            if (yb == nullptr) {
                std::copy(ya, ya + n_words_, pending_.begin());
            } else {
                kernel.xor_into(pending_.data(), ya, yb, n_words_);
            }
            ++phase_;
            break;
        case 1:
        case 5:  // first pair of a quad: carries park in twos_a_
            kernel.csa_pair(ones_.data(), twos_a_.data(), pending_.data(), ya, yb, n_words_);
            ++phase_;
            break;
        case 3:  // second pair: fold both twos into fours_a_
            kernel.csa_quad(ones_.data(), twos_.data(), twos_a_.data(), fours_a_.data(),
                            pending_.data(), ya, yb, n_words_);
            ++phase_;
            break;
        case 7:  // fourth pair: fold all the way to one weight-8 carry
            kernel.csa_oct(ones_.data(), twos_.data(), twos_a_.data(), fours_.data(),
                           fours_a_.data(), carry_.data(), pending_.data(), ya, yb, n_words_);
            push_carry_(carry_, 3);
            phase_ = 0;
            break;
        default:
            break;
    }
    ++rows_added_;
}

void ColumnCounter::add(std::span<const bits::Word> row) {
    HDLOCK_EXPECTS(row.size() == n_words_, "ColumnCounter::add: row width mismatch");
    accumulate_row_(row.data(), nullptr);
}

void ColumnCounter::add_xor(std::span<const bits::Word> a, std::span<const bits::Word> b) {
    HDLOCK_EXPECTS(a.size() == n_words_ && b.size() == n_words_,
                   "ColumnCounter::add_xor: row width mismatch");
    accumulate_row_(a.data(), b.data());
}

void ColumnCounter::add_rows(std::span<const bits::Word* const> rows) {
    std::size_t i = 0;
    if (grouped_) {
        const kernels::KernelBackend& kernel = kernels::active();
        // csa_rows compresses eight rows through the exact phase-1/3/5/7
        // tree, so it may only run when the pipeline sits on a group
        // boundary; mid-group entries (phase_ != 0) fall through to the
        // per-row path, which re-aligns the pipeline after 8 - phase_ rows.
        for (; phase_ == 0 && i + 8 <= rows.size(); i += 8) {
            group_dirty_ = true;
            kernel.csa_rows(ones_.data(), twos_.data(), fours_.data(), carry_.data(),
                            rows.data() + i, n_words_);
            push_carry_(carry_, 3);
            rows_added_ += 8;
        }
    }
    for (; i < rows.size(); ++i) accumulate_row_(rows[i], nullptr);
}

void ColumnCounter::push_carry_(std::span<const bits::Word> carry_words,
                                std::size_t start_plane) {
    const std::size_t weight = std::size_t{1} << start_plane;
    const std::size_t capacity = (std::size_t{1} << n_planes_) - 1;
    if (planes_rows_ + weight > capacity) flush_planes_();
    for (std::size_t w = 0; w < n_words_; ++w) {
        bits::Word carry = carry_words[w];
        bits::Word* plane = planes_.data() + w * n_planes_;
        for (std::size_t p = start_plane; p < n_planes_ && carry != 0; ++p) {
            const bits::Word sum = plane[p] ^ carry;
            carry &= plane[p];
            plane[p] = sum;
        }
    }
    planes_rows_ += weight;
}

void ColumnCounter::settle_group_() {
    if (!grouped_ || !group_dirty_) return;
    if ((phase_ & 1) != 0) push_carry_(pending_, 0);
    if (phase_ == 2 || phase_ == 3 || phase_ == 6 || phase_ == 7) push_carry_(twos_a_, 1);
    if (phase_ >= 4) push_carry_(fours_a_, 2);
    push_carry_(ones_, 0);
    push_carry_(twos_, 1);
    push_carry_(fours_, 2);
    std::ranges::fill(pending_, bits::Word{0});
    std::ranges::fill(ones_, bits::Word{0});
    std::ranges::fill(twos_a_, bits::Word{0});
    std::ranges::fill(twos_, bits::Word{0});
    std::ranges::fill(fours_a_, bits::Word{0});
    std::ranges::fill(fours_, bits::Word{0});
    phase_ = 0;
    group_dirty_ = false;
}

void ColumnCounter::unpack_planes_into_(std::span<std::int32_t> accumulator) const {
    // Complete 64-column words go through the backend kernel (vector code
    // touches all 64 output slots of a word unconditionally); the partial
    // tail word — whose columns past n_bits_ have no accumulator slot —
    // goes through the *same* kernel into a full-width stack buffer, and
    // only the in-range columns fold back.  Plane tails are clean by the
    // row-tail invariant, so the buffer's out-of-range columns stay zero;
    // routing the tail through the vtable keeps every phase on the active
    // backend (the scalar set-bit walk it replaces was the lone portable
    // island in otherwise vectorized unpacks).
    const std::size_t full_words = n_bits_ / bits::kWordBits;
    const kernels::KernelBackend& kernel = kernels::active();
    kernel.unpack_planes(planes_.data(), full_words, n_planes_, accumulator.data());
    if (full_words == n_words_) return;
    std::int32_t tail[bits::kWordBits] = {};
    kernel.unpack_planes(planes_.data() + full_words * n_planes_, 1, n_planes_, tail);
    const std::size_t base = full_words * bits::kWordBits;
    for (std::size_t j = base; j < n_bits_; ++j) {
        accumulator[j] += tail[j - base];
    }
}

void ColumnCounter::flush_planes_() {
    unpack_planes_into_(flushed_);
    flushed_dirty_ = true;
    std::ranges::fill(planes_, bits::Word{0});
    planes_rows_ = 0;
}

void ColumnCounter::counts_into(std::span<std::int32_t> counts) {
    HDLOCK_EXPECTS(counts.size() == n_bits_, "ColumnCounter::counts_into: size mismatch");
    settle_group_();
    flush_planes_();
    std::copy(flushed_.begin(), flushed_.end(), counts.begin());
}

void ColumnCounter::bipolar_sums_into(std::span<std::int32_t> sums) {
    HDLOCK_EXPECTS(sums.size() == n_bits_, "ColumnCounter::bipolar_sums_into: size mismatch");
    settle_group_();
    const auto n = static_cast<std::int32_t>(rows_added_);
    if (!flushed_dirty_) {
        // Nothing was ever folded out of the planes (the common batch-encode
        // case: the row count fits the planes): unpack straight into the
        // output, leaving the planes intact — the counter stays usable and
        // flushed_ is never touched, so the next reset() skips re-zeroing it.
        std::fill(sums.begin(), sums.end(), 0);
        unpack_planes_into_(sums);
        for (std::size_t j = 0; j < n_bits_; ++j) sums[j] = n - 2 * sums[j];
        return;
    }
    flush_planes_();
    for (std::size_t j = 0; j < n_bits_; ++j) sums[j] = n - 2 * flushed_[j];
}

void ColumnCounter::reset() noexcept {
    if (planes_rows_ != 0) std::ranges::fill(planes_, bits::Word{0});
    if (flushed_dirty_) {
        std::ranges::fill(flushed_, 0);
        flushed_dirty_ = false;
    }
    if (group_dirty_) {
        std::ranges::fill(pending_, bits::Word{0});
        std::ranges::fill(ones_, bits::Word{0});
        std::ranges::fill(twos_a_, bits::Word{0});
        std::ranges::fill(twos_, bits::Word{0});
        std::ranges::fill(fours_a_, bits::Word{0});
        std::ranges::fill(fours_, bits::Word{0});
        group_dirty_ = false;
    }
    phase_ = 0;
    planes_rows_ = 0;
    rows_added_ = 0;
}

void naive_accumulate(std::span<const bits::Word> row, std::size_t n_bits,
                      std::span<std::int32_t> counts) {
    HDLOCK_EXPECTS(counts.size() == n_bits, "naive_accumulate: size mismatch");
    for (std::size_t j = 0; j < n_bits; ++j) {
        counts[j] += bits::get_bit(row, j) ? 1 : 0;
    }
}

}  // namespace hdlock::util
