#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace hdlock::util {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
    HDLOCK_EXPECTS(!headers_.empty(), "TextTable: at least one column required");
}

void TextTable::add_row(std::vector<std::string> cells) {
    HDLOCK_EXPECTS(cells.size() == headers_.size(),
                   "TextTable::add_row: cell count does not match column count");
    rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream out;
    const auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c > 0) out << "  ";
            out << cells[c];
            if (c + 1 < cells.size()) {
                out << std::string(widths[c] - cells[c].size(), ' ');
            }
        }
        out << '\n';
    };

    emit(headers_);
    std::size_t rule_width = 0;
    for (std::size_t c = 0; c < widths.size(); ++c) rule_width += widths[c] + (c > 0 ? 2 : 0);
    out << std::string(rule_width, '-') << '\n';
    for (const auto& row : rows_) emit(row);
    return out.str();
}

std::string TextTable::to_csv(char delimiter) const {
    const auto escape = [delimiter](const std::string& cell) {
        const bool needs_quotes = cell.find_first_of(std::string{delimiter} + "\"\n\r") !=
                                  std::string::npos;
        if (!needs_quotes) return cell;
        std::string quoted = "\"";
        for (const char ch : cell) {
            if (ch == '"') quoted += '"';
            quoted += ch;
        }
        quoted += '"';
        return quoted;
    };

    std::ostringstream out;
    const auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c > 0) out << delimiter;
            out << escape(cells[c]);
        }
        out << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_) emit(row);
    return out.str();
}

void TextTable::print(std::ostream& out) const { out << to_string(); }

std::string format_fixed(double value, int precision) {
    HDLOCK_EXPECTS(precision >= 0 && precision <= 17, "format_fixed: precision out of range");
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
    return buffer;
}

std::string format_sci(double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.2e", value);
    return buffer;
}

std::string format_pow10(double log10_value) {
    // 10^x = mantissa * 10^exponent with mantissa in [1, 10).
    const double exponent = std::floor(log10_value);
    const double mantissa = std::pow(10.0, log10_value - exponent);
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.2fe+%02d", mantissa, static_cast<int>(exponent));
    return buffer;
}

std::string format_bits(std::uint64_t bits) {
    const double bytes = static_cast<double>(bits) / 8.0;
    char buffer[64];
    if (bytes < 1024.0) {
        std::snprintf(buffer, sizeof buffer, "%.0f B", bytes);
    } else if (bytes < 1024.0 * 1024.0) {
        std::snprintf(buffer, sizeof buffer, "%.1f KiB", bytes / 1024.0);
    } else {
        std::snprintf(buffer, sizeof buffer, "%.1f MiB", bytes / (1024.0 * 1024.0));
    }
    return buffer;
}

}  // namespace hdlock::util
