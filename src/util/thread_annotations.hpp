#pragma once

/// \file thread_annotations.hpp
/// Clang Thread Safety Analysis attribute macros.
///
/// These make "which mutex guards this field" a *compiled* property instead
/// of a comment: under clang with -Wthread-safety (the HDLOCK_THREAD_SAFETY
/// CMake option, enforced as -Werror=thread-safety in CI) the analysis
/// proves every HDLOCK_GUARDED_BY field is only touched while its mutex is
/// held and every HDLOCK_REQUIRES function is only called under the right
/// lock.  Under any other compiler the macros expand to nothing, so gcc
/// builds are byte-identical to before.
///
/// The annotations only bind to capability-aware types; the std primitives
/// carry none, so the repo locks through the thin annotated wrappers in
/// util/sync.hpp (util::Mutex / util::MutexLock / util::CondVar).  The
/// hdlock_lint `raw-sync-primitive` rule closes the loop by rejecting
/// direct std::mutex/std::condition_variable/std::thread use outside the
/// util layer — code that compiles is code the analysis actually saw.
///
/// Macro-to-attribute mapping follows the LLVM documentation (and the
/// Abseil thread_annotations.h naming it standardised):
/// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && !defined(SWIG)
#define HDLOCK_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define HDLOCK_THREAD_ANNOTATION_(x)  // not clang: annotations compile out
#endif

/// Marks a type as a lockable capability ("mutex" is the conventional kind).
#define HDLOCK_CAPABILITY(x) HDLOCK_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define HDLOCK_SCOPED_CAPABILITY HDLOCK_THREAD_ANNOTATION_(scoped_lockable)

/// Field may only be read/written while holding `x`.
#define HDLOCK_GUARDED_BY(x) HDLOCK_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field: the *pointee* may only be touched while holding `x`.
#define HDLOCK_PT_GUARDED_BY(x) HDLOCK_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function may only be called while holding the listed capabilities.
#define HDLOCK_REQUIRES(...) HDLOCK_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define HDLOCK_REQUIRES_SHARED(...) \
    HDLOCK_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define HDLOCK_ACQUIRE(...) HDLOCK_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define HDLOCK_ACQUIRE_SHARED(...) \
    HDLOCK_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases a capability the caller held on entry.
#define HDLOCK_RELEASE(...) HDLOCK_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define HDLOCK_RELEASE_SHARED(...) \
    HDLOCK_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function acquires on success (returns the `bool` value given first).
#define HDLOCK_TRY_ACQUIRE(...) HDLOCK_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock prevention).
#define HDLOCK_EXCLUDES(...) HDLOCK_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares lock acquisition order between capabilities.
#define HDLOCK_ACQUIRED_BEFORE(...) HDLOCK_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define HDLOCK_ACQUIRED_AFTER(...) HDLOCK_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function returns a reference to the capability guarding its result.
#define HDLOCK_RETURN_CAPABILITY(x) HDLOCK_THREAD_ANNOTATION_(lock_returned(x))

/// Runtime assertion that the capability is held (trusted by the analysis).
#define HDLOCK_ASSERT_CAPABILITY(x) HDLOCK_THREAD_ANNOTATION_(assert_capability(x))

/// Escape hatch: the function body is not analysed.  Every use needs a
/// justification comment — prefer restructuring over suppressing.
#define HDLOCK_NO_THREAD_SAFETY_ANALYSIS HDLOCK_THREAD_ANNOTATION_(no_thread_safety_analysis)
