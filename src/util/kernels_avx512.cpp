/// \file kernels_avx512.cpp
/// The AVX-512 kernel backend: 512-bit words, vpternlogq for the carry-save
/// sum (A^B^C, imm 0x96) and majority (carry, imm 0xE8) in one instruction
/// each, and the native vpopcntq for population counts.
///
/// Compiled with -mavx512f -mavx512bw -mavx512vpopcntdq (per-file, see
/// CMakeLists.txt); selected at runtime only when CPUID reports all three
/// features.  Same ODR discipline as kernels_avx2.cpp: everything except the
/// vector-free avx512_backend() accessor has internal linkage.

#include "util/kernels.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VPOPCNTDQ__)

#include <immintrin.h>

// GCC's avx512fintrin.h implements unmasked intrinsics (srlv & friends) by
// passing _mm512_undefined_epi32() as the masked-out source operand, which
// trips -Wuninitialized/-Wmaybe-uninitialized under -Wall (GCC PR105593).
// The warning is about the header's deliberate "undefined" value, not code
// in this file; suppress it file-wide so the -Werror CI gate stays usable.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace hdlock::util::kernels {

namespace {

void xor_into(Word* dst, const Word* a, const Word* b, std::size_t n) noexcept {
    std::size_t w = 0;
    for (; w + 8 <= n; w += 8) {
        const __m512i va = _mm512_loadu_si512(a + w);
        const __m512i vb = _mm512_loadu_si512(b + w);
        _mm512_storeu_si512(dst + w, _mm512_xor_si512(va, vb));
    }
    for (; w < n; ++w) dst[w] = a[w] ^ b[w];
}

std::size_t popcount(const Word* words, std::size_t n) noexcept {
    __m512i acc = _mm512_setzero_si512();
    std::size_t w = 0;
    for (; w + 8 <= n; w += 8) {
        acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_loadu_si512(words + w)));
    }
    std::size_t total = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
    for (; w < n; ++w) total += static_cast<std::size_t>(__builtin_popcountll(words[w]));
    return total;
}

std::size_t hamming(const Word* a, const Word* b, std::size_t n) noexcept {
    __m512i acc = _mm512_setzero_si512();
    std::size_t w = 0;
    for (; w + 8 <= n; w += 8) {
        const __m512i x = _mm512_xor_si512(_mm512_loadu_si512(a + w), _mm512_loadu_si512(b + w));
        acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
    }
    std::size_t total = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
    for (; w < n; ++w) total += static_cast<std::size_t>(__builtin_popcountll(a[w] ^ b[w]));
    return total;
}

/// sum = a ^ b ^ c.
__m512i csa_sum(__m512i a, __m512i b, __m512i c) noexcept {
    return _mm512_ternarylogic_epi64(a, b, c, 0x96);
}

/// carry = majority(a, b, c) = (a&b) | (a&c) | (b&c) — exactly the CSA
/// carry (s&x) | ((s^x)&y) of the portable kernels.
__m512i csa_carry(__m512i a, __m512i b, __m512i c) noexcept {
    return _mm512_ternarylogic_epi64(a, b, c, 0xE8);
}

template <bool Fused>
__m512i load_y(const Word* ya, const Word* yb, std::size_t w) noexcept {
    const __m512i a = _mm512_loadu_si512(ya + w);
    if constexpr (!Fused) return a;
    return _mm512_xor_si512(a, _mm512_loadu_si512(yb + w));
}

template <bool Fused>
void csa_pair_impl(Word* ones, Word* carry, const Word* x, const Word* ya, const Word* yb,
                   std::size_t n) noexcept {
    std::size_t w = 0;
    for (; w + 8 <= n; w += 8) {
        const __m512i o = _mm512_loadu_si512(ones + w);
        const __m512i vx = _mm512_loadu_si512(x + w);
        const __m512i y = load_y<Fused>(ya, yb, w);
        _mm512_storeu_si512(carry + w, csa_carry(o, vx, y));
        _mm512_storeu_si512(ones + w, csa_sum(o, vx, y));
    }
    for (; w < n; ++w) {
        const Word y = Fused ? ya[w] ^ yb[w] : ya[w];
        const Word u = ones[w] ^ x[w];
        carry[w] = (ones[w] & x[w]) | (u & y);
        ones[w] = u ^ y;
    }
}

void csa_pair(Word* ones, Word* carry, const Word* x, const Word* ya, const Word* yb,
              std::size_t n) noexcept {
    yb == nullptr ? csa_pair_impl<false>(ones, carry, x, ya, yb, n)
                  : csa_pair_impl<true>(ones, carry, x, ya, yb, n);
}

template <bool Fused>
void csa_quad_impl(Word* ones, Word* twos, const Word* twos_a, Word* fours_a, const Word* x,
                   const Word* ya, const Word* yb, std::size_t n) noexcept {
    std::size_t w = 0;
    for (; w + 8 <= n; w += 8) {
        const __m512i o = _mm512_loadu_si512(ones + w);
        const __m512i vx = _mm512_loadu_si512(x + w);
        const __m512i y = load_y<Fused>(ya, yb, w);
        const __m512i twos_b = csa_carry(o, vx, y);
        _mm512_storeu_si512(ones + w, csa_sum(o, vx, y));
        const __m512i t = _mm512_loadu_si512(twos + w);
        const __m512i ta = _mm512_loadu_si512(twos_a + w);
        _mm512_storeu_si512(fours_a + w, csa_carry(t, ta, twos_b));
        _mm512_storeu_si512(twos + w, csa_sum(t, ta, twos_b));
    }
    for (; w < n; ++w) {
        const Word y = Fused ? ya[w] ^ yb[w] : ya[w];
        const Word u = ones[w] ^ x[w];
        const Word twos_b = (ones[w] & x[w]) | (u & y);
        ones[w] = u ^ y;
        const Word u2 = twos[w] ^ twos_a[w];
        fours_a[w] = (twos[w] & twos_a[w]) | (u2 & twos_b);
        twos[w] = u2 ^ twos_b;
    }
}

void csa_quad(Word* ones, Word* twos, const Word* twos_a, Word* fours_a, const Word* x,
              const Word* ya, const Word* yb, std::size_t n) noexcept {
    yb == nullptr ? csa_quad_impl<false>(ones, twos, twos_a, fours_a, x, ya, yb, n)
                  : csa_quad_impl<true>(ones, twos, twos_a, fours_a, x, ya, yb, n);
}

template <bool Fused>
void csa_oct_impl(Word* ones, Word* twos, const Word* twos_a, Word* fours, const Word* fours_a,
                  Word* carry_out, const Word* x, const Word* ya, const Word* yb,
                  std::size_t n) noexcept {
    std::size_t w = 0;
    for (; w + 8 <= n; w += 8) {
        const __m512i o = _mm512_loadu_si512(ones + w);
        const __m512i vx = _mm512_loadu_si512(x + w);
        const __m512i y = load_y<Fused>(ya, yb, w);
        const __m512i twos_b = csa_carry(o, vx, y);
        _mm512_storeu_si512(ones + w, csa_sum(o, vx, y));
        const __m512i t = _mm512_loadu_si512(twos + w);
        const __m512i ta = _mm512_loadu_si512(twos_a + w);
        const __m512i fours_b = csa_carry(t, ta, twos_b);
        _mm512_storeu_si512(twos + w, csa_sum(t, ta, twos_b));
        const __m512i f = _mm512_loadu_si512(fours + w);
        const __m512i fa = _mm512_loadu_si512(fours_a + w);
        _mm512_storeu_si512(carry_out + w, csa_carry(f, fa, fours_b));
        _mm512_storeu_si512(fours + w, csa_sum(f, fa, fours_b));
    }
    for (; w < n; ++w) {
        const Word y = Fused ? ya[w] ^ yb[w] : ya[w];
        const Word u = ones[w] ^ x[w];
        const Word twos_b = (ones[w] & x[w]) | (u & y);
        ones[w] = u ^ y;
        const Word u2 = twos[w] ^ twos_a[w];
        const Word fours_b = (twos[w] & twos_a[w]) | (u2 & twos_b);
        twos[w] = u2 ^ twos_b;
        const Word u3 = fours[w] ^ fours_a[w];
        carry_out[w] = (fours[w] & fours_a[w]) | (u3 & fours_b);
        fours[w] = u3 ^ fours_b;
    }
}

void csa_oct(Word* ones, Word* twos, const Word* twos_a, Word* fours, const Word* fours_a,
             Word* carry_out, const Word* x, const Word* ya, const Word* yb,
             std::size_t n) noexcept {
    yb == nullptr
        ? csa_oct_impl<false>(ones, twos, twos_a, fours, fours_a, carry_out, x, ya, yb, n)
        : csa_oct_impl<true>(ones, twos, twos_a, fours, fours_a, carry_out, x, ya, yb, n);
}

/// 16-lane variant of the AVX2 dense unpack: four int32 vectors cover the
/// 64 columns of a word.
void unpack_planes(const Word* planes, std::size_t n_words, std::size_t n_planes,
                   std::int32_t* accumulator) noexcept {
    const __m512i one = _mm512_set1_epi32(1);
    const __m512i lane_shift =
        _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
    const __m512i lane_shift_hi = _mm512_add_epi32(lane_shift, _mm512_set1_epi32(16));
    for (std::size_t w = 0; w < n_words; ++w) {
        const Word* plane = planes + w * n_planes;
        __m512i counts[4];
        for (int v = 0; v < 4; ++v) counts[v] = _mm512_setzero_si512();
        for (std::size_t p = 0; p < n_planes; ++p) {
            const Word word = plane[p];
            if (word == 0) continue;
            const __m512i lo = _mm512_set1_epi32(static_cast<std::int32_t>(word));
            const __m512i hi = _mm512_set1_epi32(static_cast<std::int32_t>(word >> 32));
            const unsigned weight_shift = static_cast<unsigned>(p);
            counts[0] = _mm512_add_epi32(
                counts[0], _mm512_slli_epi32(
                               _mm512_and_si512(_mm512_srlv_epi32(lo, lane_shift), one),
                               weight_shift));
            counts[1] = _mm512_add_epi32(
                counts[1], _mm512_slli_epi32(
                               _mm512_and_si512(_mm512_srlv_epi32(lo, lane_shift_hi), one),
                               weight_shift));
            counts[2] = _mm512_add_epi32(
                counts[2], _mm512_slli_epi32(
                               _mm512_and_si512(_mm512_srlv_epi32(hi, lane_shift), one),
                               weight_shift));
            counts[3] = _mm512_add_epi32(
                counts[3], _mm512_slli_epi32(
                               _mm512_and_si512(_mm512_srlv_epi32(hi, lane_shift_hi), one),
                               weight_shift));
        }
        std::int32_t* out = accumulator + w * 64;
        for (int v = 0; v < 4; ++v) {
            std::int32_t* slot = out + v * 16;
            _mm512_storeu_si512(slot,
                                _mm512_add_epi32(_mm512_loadu_si512(slot), counts[v]));
        }
    }
}

constexpr KernelBackend kBackend{
    Backend::avx512, "avx512",  &xor_into, &popcount,      &hamming,
    &csa_pair,       &csa_quad, &csa_oct,  &unpack_planes,
};

}  // namespace

const KernelBackend* avx512_backend() noexcept { return &kBackend; }

}  // namespace hdlock::util::kernels

#else  // missing AVX-512 feature set

namespace hdlock::util::kernels {

const KernelBackend* avx512_backend() noexcept { return nullptr; }

}  // namespace hdlock::util::kernels

#endif
