/// \file kernels_avx512.cpp
/// The AVX-512 kernel backend: 512-bit words, vpternlogq for the carry-save
/// sum (A^B^C, imm 0x96) and majority (carry, imm 0xE8) in one instruction
/// each, and the native vpopcntq for population counts.
///
/// Compiled with -mavx512f -mavx512bw -mavx512vpopcntdq (per-file, see
/// CMakeLists.txt); selected at runtime only when CPUID reports all three
/// features.  Same ODR discipline as kernels_avx2.cpp: everything except the
/// vector-free avx512_backend() accessor has internal linkage.

#include "util/kernels.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VPOPCNTDQ__)

#include <immintrin.h>

// GCC's avx512fintrin.h implements unmasked intrinsics (srlv & friends) by
// passing _mm512_undefined_epi32() as the masked-out source operand, which
// trips -Wuninitialized/-Wmaybe-uninitialized under -Wall (GCC PR105593).
// The warning is about the header's deliberate "undefined" value, not code
// in this file; suppress it file-wide so the -Werror CI gate stays usable.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace hdlock::util::kernels {

namespace {

void xor_into(Word* dst, const Word* a, const Word* b, std::size_t n) noexcept {
    std::size_t w = 0;
    for (; w + 8 <= n; w += 8) {
        const __m512i va = _mm512_loadu_si512(a + w);
        const __m512i vb = _mm512_loadu_si512(b + w);
        _mm512_storeu_si512(dst + w, _mm512_xor_si512(va, vb));
    }
    for (; w < n; ++w) dst[w] = a[w] ^ b[w];
}

std::size_t popcount(const Word* words, std::size_t n) noexcept {
    __m512i acc = _mm512_setzero_si512();
    std::size_t w = 0;
    for (; w + 8 <= n; w += 8) {
        acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_loadu_si512(words + w)));
    }
    std::size_t total = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
    for (; w < n; ++w) total += static_cast<std::size_t>(__builtin_popcountll(words[w]));
    return total;
}

std::size_t hamming(const Word* a, const Word* b, std::size_t n) noexcept {
    __m512i acc = _mm512_setzero_si512();
    std::size_t w = 0;
    for (; w + 8 <= n; w += 8) {
        const __m512i x = _mm512_xor_si512(_mm512_loadu_si512(a + w), _mm512_loadu_si512(b + w));
        acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
    }
    std::size_t total = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
    for (; w < n; ++w) total += static_cast<std::size_t>(__builtin_popcountll(a[w] ^ b[w]));
    return total;
}

/// sum = a ^ b ^ c.
__m512i csa_sum(__m512i a, __m512i b, __m512i c) noexcept {
    return _mm512_ternarylogic_epi64(a, b, c, 0x96);
}

/// carry = majority(a, b, c) = (a&b) | (a&c) | (b&c) — exactly the CSA
/// carry (s&x) | ((s^x)&y) of the portable kernels.
__m512i csa_carry(__m512i a, __m512i b, __m512i c) noexcept {
    return _mm512_ternarylogic_epi64(a, b, c, 0xE8);
}

template <bool Fused>
__m512i load_y(const Word* ya, const Word* yb, std::size_t w) noexcept {
    const __m512i a = _mm512_loadu_si512(ya + w);
    if constexpr (!Fused) return a;
    return _mm512_xor_si512(a, _mm512_loadu_si512(yb + w));
}

template <bool Fused>
void csa_pair_impl(Word* ones, Word* carry, const Word* x, const Word* ya, const Word* yb,
                   std::size_t n) noexcept {
    std::size_t w = 0;
    for (; w + 8 <= n; w += 8) {
        const __m512i o = _mm512_loadu_si512(ones + w);
        const __m512i vx = _mm512_loadu_si512(x + w);
        const __m512i y = load_y<Fused>(ya, yb, w);
        _mm512_storeu_si512(carry + w, csa_carry(o, vx, y));
        _mm512_storeu_si512(ones + w, csa_sum(o, vx, y));
    }
    for (; w < n; ++w) {
        const Word y = Fused ? ya[w] ^ yb[w] : ya[w];
        const Word u = ones[w] ^ x[w];
        carry[w] = (ones[w] & x[w]) | (u & y);
        ones[w] = u ^ y;
    }
}

void csa_pair(Word* ones, Word* carry, const Word* x, const Word* ya, const Word* yb,
              std::size_t n) noexcept {
    yb == nullptr ? csa_pair_impl<false>(ones, carry, x, ya, yb, n)
                  : csa_pair_impl<true>(ones, carry, x, ya, yb, n);
}

template <bool Fused>
void csa_quad_impl(Word* ones, Word* twos, const Word* twos_a, Word* fours_a, const Word* x,
                   const Word* ya, const Word* yb, std::size_t n) noexcept {
    std::size_t w = 0;
    for (; w + 8 <= n; w += 8) {
        const __m512i o = _mm512_loadu_si512(ones + w);
        const __m512i vx = _mm512_loadu_si512(x + w);
        const __m512i y = load_y<Fused>(ya, yb, w);
        const __m512i twos_b = csa_carry(o, vx, y);
        _mm512_storeu_si512(ones + w, csa_sum(o, vx, y));
        const __m512i t = _mm512_loadu_si512(twos + w);
        const __m512i ta = _mm512_loadu_si512(twos_a + w);
        _mm512_storeu_si512(fours_a + w, csa_carry(t, ta, twos_b));
        _mm512_storeu_si512(twos + w, csa_sum(t, ta, twos_b));
    }
    for (; w < n; ++w) {
        const Word y = Fused ? ya[w] ^ yb[w] : ya[w];
        const Word u = ones[w] ^ x[w];
        const Word twos_b = (ones[w] & x[w]) | (u & y);
        ones[w] = u ^ y;
        const Word u2 = twos[w] ^ twos_a[w];
        fours_a[w] = (twos[w] & twos_a[w]) | (u2 & twos_b);
        twos[w] = u2 ^ twos_b;
    }
}

void csa_quad(Word* ones, Word* twos, const Word* twos_a, Word* fours_a, const Word* x,
              const Word* ya, const Word* yb, std::size_t n) noexcept {
    yb == nullptr ? csa_quad_impl<false>(ones, twos, twos_a, fours_a, x, ya, yb, n)
                  : csa_quad_impl<true>(ones, twos, twos_a, fours_a, x, ya, yb, n);
}

template <bool Fused>
void csa_oct_impl(Word* ones, Word* twos, const Word* twos_a, Word* fours, const Word* fours_a,
                  Word* carry_out, const Word* x, const Word* ya, const Word* yb,
                  std::size_t n) noexcept {
    std::size_t w = 0;
    for (; w + 8 <= n; w += 8) {
        const __m512i o = _mm512_loadu_si512(ones + w);
        const __m512i vx = _mm512_loadu_si512(x + w);
        const __m512i y = load_y<Fused>(ya, yb, w);
        const __m512i twos_b = csa_carry(o, vx, y);
        _mm512_storeu_si512(ones + w, csa_sum(o, vx, y));
        const __m512i t = _mm512_loadu_si512(twos + w);
        const __m512i ta = _mm512_loadu_si512(twos_a + w);
        const __m512i fours_b = csa_carry(t, ta, twos_b);
        _mm512_storeu_si512(twos + w, csa_sum(t, ta, twos_b));
        const __m512i f = _mm512_loadu_si512(fours + w);
        const __m512i fa = _mm512_loadu_si512(fours_a + w);
        _mm512_storeu_si512(carry_out + w, csa_carry(f, fa, fours_b));
        _mm512_storeu_si512(fours + w, csa_sum(f, fa, fours_b));
    }
    for (; w < n; ++w) {
        const Word y = Fused ? ya[w] ^ yb[w] : ya[w];
        const Word u = ones[w] ^ x[w];
        const Word twos_b = (ones[w] & x[w]) | (u & y);
        ones[w] = u ^ y;
        const Word u2 = twos[w] ^ twos_a[w];
        const Word fours_b = (twos[w] & twos_a[w]) | (u2 & twos_b);
        twos[w] = u2 ^ twos_b;
        const Word u3 = fours[w] ^ fours_a[w];
        carry_out[w] = (fours[w] & fours_a[w]) | (u3 & fours_b);
        fours[w] = u3 ^ fours_b;
    }
}

void csa_oct(Word* ones, Word* twos, const Word* twos_a, Word* fours, const Word* fours_a,
             Word* carry_out, const Word* x, const Word* ya, const Word* yb,
             std::size_t n) noexcept {
    yb == nullptr
        ? csa_oct_impl<false>(ones, twos, twos_a, fours, fours_a, carry_out, x, ya, yb, n)
        : csa_oct_impl<true>(ones, twos, twos_a, fours, fours_a, carry_out, x, ya, yb, n);
}

/// 16-lane variant of the AVX2 dense unpack: four int32 vectors cover the
/// 64 columns of a word.
void unpack_planes(const Word* planes, std::size_t n_words, std::size_t n_planes,
                   std::int32_t* accumulator) noexcept {
    const __m512i one = _mm512_set1_epi32(1);
    const __m512i lane_shift =
        _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
    const __m512i lane_shift_hi = _mm512_add_epi32(lane_shift, _mm512_set1_epi32(16));
    for (std::size_t w = 0; w < n_words; ++w) {
        const Word* plane = planes + w * n_planes;
        __m512i counts[4];
        for (int v = 0; v < 4; ++v) counts[v] = _mm512_setzero_si512();
        for (std::size_t p = 0; p < n_planes; ++p) {
            const Word word = plane[p];
            if (word == 0) continue;
            const __m512i lo = _mm512_set1_epi32(static_cast<std::int32_t>(word));
            const __m512i hi = _mm512_set1_epi32(static_cast<std::int32_t>(word >> 32));
            const unsigned weight_shift = static_cast<unsigned>(p);
            counts[0] = _mm512_add_epi32(
                counts[0], _mm512_slli_epi32(
                               _mm512_and_si512(_mm512_srlv_epi32(lo, lane_shift), one),
                               weight_shift));
            counts[1] = _mm512_add_epi32(
                counts[1], _mm512_slli_epi32(
                               _mm512_and_si512(_mm512_srlv_epi32(lo, lane_shift_hi), one),
                               weight_shift));
            counts[2] = _mm512_add_epi32(
                counts[2], _mm512_slli_epi32(
                               _mm512_and_si512(_mm512_srlv_epi32(hi, lane_shift), one),
                               weight_shift));
            counts[3] = _mm512_add_epi32(
                counts[3], _mm512_slli_epi32(
                               _mm512_and_si512(_mm512_srlv_epi32(hi, lane_shift_hi), one),
                               weight_shift));
        }
        std::int32_t* out = accumulator + w * 64;
        for (int v = 0; v < 4; ++v) {
            std::int32_t* slot = out + v * 16;
            _mm512_storeu_si512(slot,
                                _mm512_add_epi32(_mm512_loadu_si512(slot), counts[v]));
        }
    }
}

void csa_rows(Word* ones, Word* twos, Word* fours, Word* carry_out, const Word* const* rows,
              std::size_t n) noexcept {
    const Word* r0 = rows[0];
    const Word* r1 = rows[1];
    const Word* r2 = rows[2];
    const Word* r3 = rows[3];
    const Word* r4 = rows[4];
    const Word* r5 = rows[5];
    const Word* r6 = rows[6];
    const Word* r7 = rows[7];
    std::size_t w = 0;
    for (; w + 8 <= n; w += 8) {
        // Same dataflow as the scalar csa_rows_words tree; every CSA is one
        // vpternlogq pair.
        __m512i o = _mm512_loadu_si512(ones + w);
        const __m512i x0 = _mm512_loadu_si512(r0 + w);
        const __m512i x1 = _mm512_loadu_si512(r1 + w);
        const __m512i twos_a = csa_carry(o, x0, x1);
        o = csa_sum(o, x0, x1);
        const __m512i x2 = _mm512_loadu_si512(r2 + w);
        const __m512i x3 = _mm512_loadu_si512(r3 + w);
        const __m512i twos_b = csa_carry(o, x2, x3);
        o = csa_sum(o, x2, x3);
        __m512i t = _mm512_loadu_si512(twos + w);
        const __m512i fours_a = csa_carry(t, twos_a, twos_b);
        t = csa_sum(t, twos_a, twos_b);
        const __m512i x4 = _mm512_loadu_si512(r4 + w);
        const __m512i x5 = _mm512_loadu_si512(r5 + w);
        const __m512i twos_c = csa_carry(o, x4, x5);
        o = csa_sum(o, x4, x5);
        const __m512i x6 = _mm512_loadu_si512(r6 + w);
        const __m512i x7 = _mm512_loadu_si512(r7 + w);
        const __m512i twos_d = csa_carry(o, x6, x7);
        o = csa_sum(o, x6, x7);
        const __m512i fours_b = csa_carry(t, twos_c, twos_d);
        t = csa_sum(t, twos_c, twos_d);
        const __m512i f = _mm512_loadu_si512(fours + w);
        _mm512_storeu_si512(carry_out + w, csa_carry(f, fours_a, fours_b));
        _mm512_storeu_si512(fours + w, csa_sum(f, fours_a, fours_b));
        _mm512_storeu_si512(ones + w, o);
        _mm512_storeu_si512(twos + w, t);
    }
    detail::csa_rows_words(ones, twos, fours, carry_out, rows, w, n);
}

template <bool Fused>
__m512i load_row(const Word* const* rows_a, const Word* const* rows_b, std::size_t r,
                 std::size_t w) noexcept {
    const __m512i a = _mm512_loadu_si512(rows_a[r] + w);
    if constexpr (!Fused) return a;
    return _mm512_xor_si512(a, _mm512_loadu_si512(rows_b[r] + w));
}

template <bool Fused>
void fused_hamming_scores_impl(const Word* const* rows_a, const Word* const* rows_b,
                               std::size_t n_rows, const Word* const* class_rows,
                               std::size_t n_classes, std::size_t n_words, TieResolver ties,
                               void* tie_ctx, std::uint64_t* distances) noexcept {
    const auto n_planes = static_cast<std::size_t>(64 - __builtin_clzll(n_rows));
    const Word threshold = n_rows / 2;
    const bool can_tie = (n_rows % 2) == 0 && ties != nullptr;
    std::size_t w = 0;
    for (; w + 8 <= n_words; w += 8) {
        // Per eight-word block the count planes live in zmm registers/L1:
        // n_planes + ones/twos/fours + CSA temps stays within the 32-register
        // file up to ~1k rows (see DESIGN.md register pressure math).
        __m512i planes[16];
        for (std::size_t p = 0; p < n_planes; ++p) planes[p] = _mm512_setzero_si512();
        __m512i ones = _mm512_setzero_si512();
        __m512i twos = _mm512_setzero_si512();
        __m512i fours = _mm512_setzero_si512();
        std::size_t r = 0;
        for (; r + 8 <= n_rows; r += 8) {
            const __m512i x0 = load_row<Fused>(rows_a, rows_b, r + 0, w);
            const __m512i x1 = load_row<Fused>(rows_a, rows_b, r + 1, w);
            const __m512i twos_a = csa_carry(ones, x0, x1);
            ones = csa_sum(ones, x0, x1);
            const __m512i x2 = load_row<Fused>(rows_a, rows_b, r + 2, w);
            const __m512i x3 = load_row<Fused>(rows_a, rows_b, r + 3, w);
            const __m512i twos_b = csa_carry(ones, x2, x3);
            ones = csa_sum(ones, x2, x3);
            const __m512i fours_a = csa_carry(twos, twos_a, twos_b);
            twos = csa_sum(twos, twos_a, twos_b);
            const __m512i x4 = load_row<Fused>(rows_a, rows_b, r + 4, w);
            const __m512i x5 = load_row<Fused>(rows_a, rows_b, r + 5, w);
            const __m512i twos_c = csa_carry(ones, x4, x5);
            ones = csa_sum(ones, x4, x5);
            const __m512i x6 = load_row<Fused>(rows_a, rows_b, r + 6, w);
            const __m512i x7 = load_row<Fused>(rows_a, rows_b, r + 7, w);
            const __m512i twos_d = csa_carry(ones, x6, x7);
            ones = csa_sum(ones, x6, x7);
            const __m512i fours_b = csa_carry(twos, twos_c, twos_d);
            twos = csa_sum(twos, twos_c, twos_d);
            __m512i carry = csa_carry(fours, fours_a, fours_b);
            fours = csa_sum(fours, fours_a, fours_b);
            for (std::size_t p = 3; p < n_planes; ++p) {
                const __m512i sum = _mm512_xor_si512(planes[p], carry);
                carry = _mm512_and_si512(planes[p], carry);
                planes[p] = sum;
            }
        }
        for (; r < n_rows; ++r) {
            const __m512i x = load_row<Fused>(rows_a, rows_b, r, w);
            __m512i carry = _mm512_and_si512(ones, x);
            ones = _mm512_xor_si512(ones, x);
            const __m512i c2 = _mm512_and_si512(twos, carry);
            twos = _mm512_xor_si512(twos, carry);
            carry = _mm512_and_si512(fours, c2);
            fours = _mm512_xor_si512(fours, c2);
            for (std::size_t p = 3; p < n_planes; ++p) {
                const __m512i sum = _mm512_xor_si512(planes[p], carry);
                carry = _mm512_and_si512(planes[p], carry);
                planes[p] = sum;
            }
        }
        __m512i carries[3] = {ones, twos, fours};
        for (std::size_t start = 0; start < 3; ++start) {
            __m512i carry = carries[start];
            for (std::size_t p = start; p < n_planes; ++p) {
                const __m512i sum = _mm512_xor_si512(planes[p], carry);
                carry = _mm512_and_si512(planes[p], carry);
                planes[p] = sum;
            }
        }
        // Bit-sliced count > / == threshold, MSB plane first.
        __m512i gt = _mm512_setzero_si512();
        __m512i eq = _mm512_set1_epi64(-1);
        for (std::size_t p = n_planes; p-- > 0;) {
            if (((threshold >> p) & 1u) != 0) {
                eq = _mm512_and_si512(eq, planes[p]);
            } else {
                gt = _mm512_or_si512(gt, _mm512_and_si512(eq, planes[p]));
                eq = _mm512_andnot_si512(planes[p], eq);
            }
        }
        __m512i query = gt;
        if (can_tie && _mm512_test_epi64_mask(eq, eq) != 0) {
            alignas(64) Word eq_words[8];
            alignas(64) Word tie_words[8];
            _mm512_store_si512(eq_words, eq);
            for (std::size_t k = 0; k < 8; ++k) {
                tie_words[k] =
                    eq_words[k] == 0 ? 0 : (ties(tie_ctx, eq_words[k], w + k) & eq_words[k]);
            }
            query = _mm512_or_si512(query, _mm512_load_si512(tie_words));
        }
        for (std::size_t c = 0; c < n_classes; ++c) {
            const __m512i x = _mm512_xor_si512(query, _mm512_loadu_si512(class_rows[c] + w));
            distances[c] +=
                static_cast<std::uint64_t>(_mm512_reduce_add_epi64(_mm512_popcnt_epi64(x)));
        }
    }
    detail::fused_hamming_words(rows_a, rows_b, n_rows, class_rows, n_classes, w, n_words, ties,
                                tie_ctx, distances);
}

void fused_hamming_scores(const Word* const* rows_a, const Word* const* rows_b,
                          std::size_t n_rows, const Word* const* class_rows,
                          std::size_t n_classes, std::size_t n_words, TieResolver ties,
                          void* tie_ctx, std::uint64_t* distances) noexcept {
    for (std::size_t c = 0; c < n_classes; ++c) distances[c] = 0;
    if (n_rows == 0) return;
    rows_b == nullptr
        ? fused_hamming_scores_impl<false>(rows_a, rows_b, n_rows, class_rows, n_classes,
                                           n_words, ties, tie_ctx, distances)
        : fused_hamming_scores_impl<true>(rows_a, rows_b, n_rows, class_rows, n_classes,
                                          n_words, ties, tie_ctx, distances);
}

constexpr KernelBackend kBackend{
    Backend::avx512, "avx512",  &xor_into, &popcount,      &hamming,   &csa_pair,
    &csa_quad,       &csa_oct,  &unpack_planes, &csa_rows, &fused_hamming_scores,
};

}  // namespace

const KernelBackend* avx512_backend() noexcept { return &kBackend; }

}  // namespace hdlock::util::kernels

#else  // missing AVX-512 feature set

namespace hdlock::util::kernels {

const KernelBackend* avx512_backend() noexcept { return nullptr; }

}  // namespace hdlock::util::kernels

#endif
