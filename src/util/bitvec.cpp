#include "util/bitvec.hpp"

#include <algorithm>
#include <bit>

#include "util/kernels.hpp"

namespace hdlock::util::bits {

void clear(std::span<Word> words) noexcept {
    std::ranges::fill(words, Word{0});
}

void fill_random(std::span<Word> words, std::size_t n_bits, Xoshiro256ss& rng) noexcept {
    for (auto& word : words) word = rng();
    if (!words.empty()) words.back() &= tail_mask(n_bits);
}

void xor_into(std::span<Word> dst, std::span<const Word> a, std::span<const Word> b) noexcept {
    kernels::active().xor_into(dst.data(), a.data(), b.data(), dst.size());
}

void not_into(std::span<Word> dst, std::span<const Word> src, std::size_t n_bits) noexcept {
    const std::size_t n = dst.size();
    for (std::size_t w = 0; w < n; ++w) dst[w] = ~src[w];
    if (!dst.empty()) dst.back() &= tail_mask(n_bits);
}

std::size_t popcount(std::span<const Word> words) noexcept {
    return kernels::active().popcount(words.data(), words.size());
}

std::size_t hamming(std::span<const Word> a, std::span<const Word> b) noexcept {
    return kernels::active().hamming(a.data(), b.data(), a.size());
}

void collect_set_bits(std::span<const Word> words, std::size_t n_bits,
                      std::vector<std::uint32_t>& out) {
    for (std::size_t w = 0; w < words.size(); ++w) {
        Word word = words[w];
        while (word != 0) {
            const auto bit = static_cast<std::size_t>(std::countr_zero(word));
            const std::size_t index = w * kWordBits + bit;
            if (index < n_bits) out.push_back(static_cast<std::uint32_t>(index));
            word &= word - 1;  // clear lowest set bit
        }
    }
}

namespace {

/// Extracts `len` (1..64) bits of src starting at bit offset `off`.
Word extract_bits(std::span<const Word> src, std::size_t off, std::size_t len) noexcept {
    const std::size_t word = off / kWordBits;
    const std::size_t shift = off % kWordBits;
    Word value = src[word] >> shift;
    const std::size_t taken = kWordBits - shift;
    if (len > taken) {
        value |= src[word + 1] << taken;
    }
    if (len < kWordBits) {
        value &= (Word{1} << len) - 1;
    }
    return value;
}

/// Deposits `len` (1..64) bits of `value` into dst at bit offset `off`.
/// Bits of `value` above `len` must be zero.
void deposit_bits(std::span<Word> dst, std::size_t off, std::size_t len, Word value) noexcept {
    const std::size_t word = off / kWordBits;
    const std::size_t shift = off % kWordBits;
    const Word mask = (len < kWordBits) ? ((Word{1} << len) - 1) : ~Word{0};
    dst[word] = (dst[word] & ~(mask << shift)) | (value << shift);
    const std::size_t taken = kWordBits - shift;
    if (len > taken) {
        const std::size_t spill = len - taken;
        const Word spill_mask = (Word{1} << spill) - 1;
        dst[word + 1] = (dst[word + 1] & ~spill_mask) | (value >> taken);
    }
}

}  // namespace

void copy_bits(std::span<Word> dst, std::size_t dst_off, std::span<const Word> src,
               std::size_t src_off, std::size_t len) {
    HDLOCK_EXPECTS(dst_off + len <= dst.size() * kWordBits, "copy_bits: destination overflow");
    HDLOCK_EXPECTS(src_off + len <= src.size() * kWordBits, "copy_bits: source overflow");
    HDLOCK_EXPECTS(dst.data() != src.data(), "copy_bits: aliasing is not supported");
    while (len > 0) {
        const std::size_t chunk = std::min({len, kWordBits, kWordBits - dst_off % kWordBits});
        deposit_bits(dst, dst_off, chunk, extract_bits(src, src_off, chunk));
        dst_off += chunk;
        src_off += chunk;
        len -= chunk;
    }
}

void rotate(std::span<Word> dst, std::span<const Word> src, std::size_t n_bits, std::size_t k) {
    HDLOCK_EXPECTS(n_bits > 0, "rotate: empty vector");
    HDLOCK_EXPECTS(dst.size() >= word_count(n_bits) && src.size() >= word_count(n_bits),
                   "rotate: spans too small for n_bits");
    HDLOCK_EXPECTS(dst.data() != src.data(), "rotate: aliasing is not supported");
    k %= n_bits;
    if (k == 0) {
        std::copy(src.begin(), src.end(), dst.begin());
        return;
    }
    // dst[i] = src[(i + k) mod n]: the suffix of src starting at bit k moves
    // to the front of dst, and the first k bits of src wrap to the tail.
    copy_bits(dst, 0, src, k, n_bits - k);
    copy_bits(dst, n_bits - k, src, 0, k);
    if (!dst.empty()) dst[word_count(n_bits) - 1] &= tail_mask(n_bits);
}

bool equal(std::span<const Word> a, std::span<const Word> b) noexcept {
    return std::ranges::equal(a, b);
}

}  // namespace hdlock::util::bits
