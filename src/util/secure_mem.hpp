#pragma once

/// \file secure_mem.hpp
/// Scrubbed storage for key-bearing state.
///
/// The confinement analysis (tools/lint/, DESIGN.md §7) proves key bytes
/// never reach device-side translation units; this header covers the
/// complementary lifetime half of the story: when owner-side key state dies
/// (rotation, re-provisioning, a failed rekey draw), its bytes must not
/// linger on the heap for a later allocation — or a core dump — to pick up.
///
/// secure_zero() is the scrubbing primitive: an out-of-line volatile fill
/// the optimizer cannot elide as a dead store.  SecureVector<T> is a minimal
/// contiguous container for trivially-copyable records that scrubs on
/// clear(), on move-out and on destruction.  Unlike std::vector, clear()
/// keeps the allocation alive (capacity is retained), which is what makes
/// the scrub *testable*: a test may hold the data() pointer across clear()
/// and legally observe the zeroed bytes.

#include <cstddef>
#include <cstring>
#include <type_traits>
#include <utility>

#include "util/error.hpp"

namespace hdlock::util {

/// Overwrites `bytes` bytes at `data` with zeros through a volatile pointer;
/// never elided by dead-store elimination (out-of-line + compiler barrier).
void secure_zero(void* data, std::size_t bytes) noexcept;

/// Contiguous storage that zeroes its memory before giving it back.
///
/// Deliberately minimal: exactly the surface LockKey and friends need
/// (resize/reserve/push_back/index/iterate/compare).  T must be trivially
/// copyable and trivially destructible so raw byte scrubbing is the whole
/// destruction story.
template <typename T>
class SecureVector {
    static_assert(std::is_trivially_copyable_v<T>,
                  "SecureVector scrubs raw bytes; T must be trivially copyable");
    static_assert(std::is_trivially_destructible_v<T>,
                  "SecureVector never runs destructors; T must be trivially destructible");

public:
    SecureVector() = default;

    SecureVector(const SecureVector& other) { assign_from(other); }

    SecureVector& operator=(const SecureVector& other) {
        if (this != &other) {
            scrub_and_release();
            assign_from(other);
        }
        return *this;
    }

    SecureVector(SecureVector&& other) noexcept
        : data_(std::exchange(other.data_, nullptr)),
          size_(std::exchange(other.size_, 0)),
          capacity_(std::exchange(other.capacity_, 0)) {}

    SecureVector& operator=(SecureVector&& other) noexcept {
        if (this != &other) {
            scrub_and_release();
            data_ = std::exchange(other.data_, nullptr);
            size_ = std::exchange(other.size_, 0);
            capacity_ = std::exchange(other.capacity_, 0);
        }
        return *this;
    }

    ~SecureVector() { scrub_and_release(); }

    std::size_t size() const noexcept { return size_; }
    std::size_t capacity() const noexcept { return capacity_; }
    bool empty() const noexcept { return size_ == 0; }

    /// Valid (non-null) whenever capacity() > 0, even at size() == 0: after
    /// clear() the allocation survives so scrubbing is observable.
    T* data() noexcept { return data_; }
    const T* data() const noexcept { return data_; }

    T* begin() noexcept { return data_; }
    T* end() noexcept { return data_ + size_; }
    const T* begin() const noexcept { return data_; }
    const T* end() const noexcept { return data_ + size_; }

    T& operator[](std::size_t index) noexcept { return data_[index]; }
    const T& operator[](std::size_t index) const noexcept { return data_[index]; }

    void reserve(std::size_t n) {
        if (n > capacity_) regrow(n);
    }

    /// New elements are value-initialized (all-zero for the record types
    /// this container exists for).
    void resize(std::size_t n) {
        reserve(n);
        if (n > size_) std::memset(static_cast<void*>(data_ + size_), 0, (n - size_) * sizeof(T));
        if (n < size_) secure_zero(data_ + n, (size_ - n) * sizeof(T));
        size_ = n;
    }

    void push_back(const T& value) {
        if (size_ == capacity_) regrow(capacity_ == 0 ? 8 : capacity_ * 2);
        data_[size_++] = value;
    }

    /// Zeroes every live element, then empties.  The allocation (and thus
    /// the data() pointer) stays valid so callers/tests can verify the wipe.
    void clear() noexcept {
        if (data_ != nullptr) secure_zero(data_, size_ * sizeof(T));
        size_ = 0;
    }

    bool operator==(const SecureVector& other) const {
        if (size_ != other.size_) return false;
        for (std::size_t i = 0; i < size_; ++i) {
            if (!(data_[i] == other.data_[i])) return false;
        }
        return true;
    }

private:
    void assign_from(const SecureVector& other) {
        if (other.size_ == 0) return;
        regrow(other.size_);
        std::memcpy(static_cast<void*>(data_), other.data_, other.size_ * sizeof(T));
        size_ = other.size_;
    }

    void regrow(std::size_t n) {
        T* fresh = static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{alignof(T)}));
        const std::size_t keep = size_;
        if (keep > 0) std::memcpy(static_cast<void*>(fresh), data_, keep * sizeof(T));
        scrub_and_release();
        data_ = fresh;
        size_ = keep;
        capacity_ = n;
    }

    void scrub_and_release() noexcept {
        if (data_ == nullptr) return;
        secure_zero(data_, capacity_ * sizeof(T));
        ::operator delete(data_, std::align_val_t{alignof(T)});
        data_ = nullptr;
        size_ = 0;
        capacity_ = 0;
    }

    T* data_ = nullptr;
    std::size_t size_ = 0;
    std::size_t capacity_ = 0;
};

}  // namespace hdlock::util
