#include "util/rng.hpp"

#include <bit>
#include <cmath>
#include <numbers>

namespace hdlock::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256ss::Xoshiro256ss(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
    // An all-zero state would be a fixed point; SplitMix64 cannot produce
    // four zero outputs in a row, so no further check is needed.
}

Xoshiro256ss::result_type Xoshiro256ss::operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t Xoshiro256ss::next_below(std::uint64_t bound) noexcept {
    // Bitmask rejection: unbiased and free of 128-bit arithmetic. Expected
    // iterations < 2 for any bound.
    if (bound <= 1) return 0;
    const int width = 64 - std::countl_zero(bound - 1);
    const std::uint64_t mask = width == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
    for (;;) {
        const std::uint64_t x = operator()() & mask;
        if (x < bound) return x;
    }
}

double Xoshiro256ss::next_double() noexcept {
    // 53 high bits -> [0, 1) with full double precision.
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
}

double Xoshiro256ss::next_normal() noexcept {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    // Box-Muller; u1 is kept away from zero so std::log stays finite.
    double u1 = 0.0;
    do {
        u1 = next_double();
    } while (u1 <= 0.0);
    const double u2 = next_double();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    cached_normal_ = radius * std::sin(angle);
    has_cached_normal_ = true;
    return radius * std::cos(angle);
}

std::uint64_t fnv1a(std::span<const std::byte> bytes) noexcept {
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const std::byte b : bytes) {
        hash ^= static_cast<std::uint64_t>(b);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

}  // namespace hdlock::util
