#pragma once

/// \file mapped_file.hpp
/// Read-only memory-mapped file with a portable read fallback.
///
/// The zero-copy `.hdlk` startup path (DeploymentBundle::open_mapped) wants
/// the file bytes addressable without buffering the whole artifact through
/// copies: mmap gives exactly that on POSIX hosts — pages fault in lazily
/// and stay shared with the page cache.  On platforms without mmap (or when
/// mapping fails), the fallback reads the file into one 64-byte-aligned heap
/// buffer, so callers see the identical span-of-bytes interface either way
/// and alignment guarantees hold in both modes.
///
/// Alignment contract: bytes().data() is at least 64-byte aligned (mmap
/// returns page-aligned addresses; the fallback allocates aligned).  The
/// `.hdlk` v2 format aligns its bulk word sections to 64-byte file offsets,
/// so a section's absolute address is aligned too — safe to reinterpret as
/// std::uint64_t words and friendly to cache lines / AVX-512 loads.

#include <cstddef>
#include <filesystem>
#include <span>

namespace hdlock::util {

class MappedFile {
public:
    /// Page-in advice for open(): lazy faulting is ideal when only a slice
    /// of the artifact is touched, but a serving process that will read the
    /// whole model immediately (norm recompute, first batch) pays one minor
    /// fault per 4 KiB page on the hot path.  `willneed` issues
    /// madvise(MADV_WILLNEED) right after the map so the kernel starts
    /// asynchronous readahead; purely a scheduling hint — contents and the
    /// span interface are identical, and hosts without madvise ignore it.
    enum class Advice : std::uint8_t {
        none = 0,      ///< default lazy faulting
        willneed = 1,  ///< kick off readahead for the whole mapping
    };

    /// Maps `path` read-only; falls back to a buffered read when mapping is
    /// unavailable.  Throws IoError when the file cannot be opened or read.
    static MappedFile open(const std::filesystem::path& path, Advice advice = Advice::none);

    /// The fallback path, forced (for tests and for callers that will touch
    /// every byte exactly once anyway).
    static MappedFile open_buffered(const std::filesystem::path& path);

    MappedFile() = default;
    ~MappedFile();

    MappedFile(MappedFile&& other) noexcept;
    MappedFile& operator=(MappedFile&& other) noexcept;
    MappedFile(const MappedFile&) = delete;
    MappedFile& operator=(const MappedFile&) = delete;

    std::span<const std::byte> bytes() const noexcept {
        return std::span<const std::byte>(data_, size_);
    }
    std::size_t size() const noexcept { return size_; }

    /// True when the bytes come from a live mmap (false: heap fallback).
    bool is_mapped() const noexcept { return mapped_; }

private:
    const std::byte* data_ = nullptr;
    std::size_t size_ = 0;
    bool mapped_ = false;

    void release_() noexcept;
};

}  // namespace hdlock::util
