#include "util/mapped_file.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <new>
#include <string>

#include "util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define HDLOCK_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define HDLOCK_HAVE_MMAP 0
#endif

namespace hdlock::util {

namespace {

constexpr std::size_t kAlignment = 64;

/// errno rendered for exception messages, e.g. " (errno 2, No such file or
/// directory)".  Captured at the call site of the failing syscall.
std::string errno_detail() {
    const int code = errno;
    return " (errno " + std::to_string(code) + ", " + std::strerror(code) + ")";
}

/// Reads the whole file into a 64-byte-aligned heap buffer (the portable
/// fallback and the empty-file case — mmap rejects zero-length mappings).
const std::byte* read_whole_file(const std::filesystem::path& path, std::size_t& size_out) {
    errno = 0;
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) {
        throw IoError("MappedFile: cannot open for reading: " + path.string() + errno_detail());
    }
    const std::streamoff size = in.tellg();
    if (size < 0) throw IoError("MappedFile: cannot size: " + path.string());
    in.seekg(0);
    auto* buffer = static_cast<std::byte*>(
        ::operator new(std::max<std::size_t>(static_cast<std::size_t>(size), 1),
                       std::align_val_t{kAlignment}));
    in.read(reinterpret_cast<char*>(buffer), size);
    if (in.gcount() != size) {
        ::operator delete(buffer, std::align_val_t{kAlignment});
        throw IoError("MappedFile: short read: " + path.string());
    }
    size_out = static_cast<std::size_t>(size);
    return buffer;
}

}  // namespace

MappedFile MappedFile::open_buffered(const std::filesystem::path& path) {
    MappedFile file;
    file.data_ = read_whole_file(path, file.size_);
    file.mapped_ = false;
    return file;
}

MappedFile MappedFile::open(const std::filesystem::path& path, Advice advice) {
#if HDLOCK_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        throw IoError("MappedFile: cannot open for reading: " + path.string() + errno_detail());
    }
    struct stat status {};
    if (::fstat(fd, &status) != 0 || status.st_size < 0) {
        const std::string detail = errno_detail();
        ::close(fd);
        throw IoError("MappedFile: cannot stat: " + path.string() + detail);
    }
    const auto size = static_cast<std::size_t>(status.st_size);
    if (size == 0) {
        ::close(fd);
        return open_buffered(path);  // mmap rejects zero-length mappings
    }
    void* address = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping keeps its own reference
    if (address == MAP_FAILED) return open_buffered(path);
#if defined(MADV_WILLNEED)
    // Best-effort readahead hint; a failure (e.g. a filesystem that does not
    // support it) leaves plain lazy faulting, which is always correct.
    if (advice == Advice::willneed) ::madvise(address, size, MADV_WILLNEED);
#else
    (void)advice;
#endif
    MappedFile file;
    file.data_ = static_cast<const std::byte*>(address);
    file.size_ = size;
    file.mapped_ = true;
    return file;
#else
    (void)advice;
    return open_buffered(path);
#endif
}

void MappedFile::release_() noexcept {
    if (data_ == nullptr) return;
#if HDLOCK_HAVE_MMAP
    if (mapped_) {
        ::munmap(const_cast<std::byte*>(data_), size_);
        data_ = nullptr;
        size_ = 0;
        mapped_ = false;
        return;
    }
#endif
    ::operator delete(const_cast<std::byte*>(data_), std::align_val_t{kAlignment});
    data_ = nullptr;
    size_ = 0;
}

MappedFile::~MappedFile() {
    release_();
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_), size_(other.size_), mapped_(other.mapped_) {
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
    if (this != &other) {
        release_();
        data_ = other.data_;
        size_ = other.size_;
        mapped_ = other.mapped_;
        other.data_ = nullptr;
        other.size_ = 0;
        other.mapped_ = false;
    }
    return *this;
}

}  // namespace hdlock::util
