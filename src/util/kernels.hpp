#pragma once

/// \file kernels.hpp
/// Runtime-dispatched SIMD backends for the bit-packed word kernels.
///
/// Everything hot in this codebase bottoms out in a handful of loops over
/// packed uint64 words: XOR binds, population counts, Hamming distances, the
/// Harley–Seal carry-save steps inside util::ColumnCounter, and the
/// plane-unpack that turns carry-save planes back into per-column counts.
/// This header gives those loops a vtable (KernelBackend) with four
/// implementations:
///
///   portable  the plain C++ loops (always available, the reference);
///   neon      128-bit ARM NEON intrinsics (kernels_neon.cpp; Advanced SIMD
///             is baseline on aarch64, so no extra -m flags — the TU
///             self-gates on __ARM_NEON);
///   avx2      256-bit AVX2 intrinsics (compiled only into kernels_avx2.cpp
///             with -mavx2; selected only when CPUID reports AVX2);
///   avx512    512-bit AVX-512 intrinsics (compiled with -mavx512f/-bw/
///             -vpopcntdq; selected only when CPUID reports all three).
///
/// Dispatch is process-global and resolved once at first use: the best
/// compiled-in backend the CPU supports, overridable by the environment
/// variable HDLOCK_KERNEL_BACKEND=portable|neon|avx2|avx512 (an unavailable
/// or unknown value warns once on stderr and falls back to auto-detection —
/// a deployment artifact must degrade, not crash) and by set_backend() for
/// tests and serving code that must pin a specific implementation
/// (api::SessionOptions::kernel_backend).
///
/// Contract: every backend is bit-identical to portable on every input.
/// All kernels are exact integer arithmetic with order-independent
/// reductions, so vector width never changes a result — the byte-identical
/// JSON determinism contract of the eval:: harness holds across backends,
/// and tests/util/kernels_test.cc asserts agreement on randomized inputs
/// including odd tail lengths.
///
/// Why dispatch sits at the word-kernel layer (and not per-encoder): see
/// DESIGN.md §5.  In short, every encoder variant (record, locked, sealed),
/// the model distance scoring and the attack sweeps share these same five
/// loops; one dispatch point under util:: accelerates all of them at once
/// and keeps the ISA-specific surface small enough to exhaustively test for
/// bit-equality.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hdlock::util::kernels {

using Word = std::uint64_t;

/// Backend identity, in ascending preference order (auto-detection picks the
/// highest available value).  Never serialized — reports store the name
/// string — so reordering to slot neon in is safe.
enum class Backend : std::uint8_t { portable = 0, neon = 1, avx2 = 2, avx512 = 3 };

/// Row-count ceiling of the fused encode→distance kernel: per-column counts
/// are kept in bit-sliced planes, capped at 16 (the util::ColumnCounter
/// plane budget), so counts must fit 16 bits.
inline constexpr std::size_t kMaxFusedRows = 65535;

/// Tie-break callback for fused_hamming_scores.  `eq_mask` flags the columns
/// of word `word_index` whose accumulated count landed exactly on
/// n_rows / 2 (a zero bipolar sum — only possible for even n_rows); the
/// resolver returns the subset that binarize negative (bit set in the query).
/// The kernel invokes it at most once per word, in ascending word order, and
/// only when eq_mask != 0 — so a resolver drawing one RNG sign per set bit in
/// ascending bit order consumes the stream exactly like IntHV::sign_into.
/// Kept as a raw function pointer for the same ODR reason as the vtable: the
/// RNG lives outside the ISA translation units.
using TieResolver = Word (*)(void* ctx, Word eq_mask, std::size_t word_index) noexcept;

/// The word-kernel vtable.  Raw pointers + lengths on purpose: the ISA
/// translation units must not instantiate inline std templates under
/// -mavx2/-mavx512 (an inline function compiled twice with different ISAs is
/// an ODR hazard — the linker keeps one copy, which may then execute illegal
/// instructions on a lesser host).
struct KernelBackend {
    Backend kind = Backend::portable;
    const char* name = "portable";

    /// dst[i] = a[i] ^ b[i]; dst may alias a or b.
    void (*xor_into)(Word* dst, const Word* a, const Word* b, std::size_t n) noexcept;

    /// Total set bits over words[0..n).
    std::size_t (*popcount)(const Word* words, std::size_t n) noexcept;

    /// Total set bits of a[i] ^ b[i] over [0..n) (unnormalized Hamming).
    std::size_t (*hamming)(const Word* a, const Word* b, std::size_t n) noexcept;

    /// One fused carry-save adder step over whole word arrays — the
    /// ColumnCounter phase-1/5 kernel.  Per word, with y = yb ? ya^yb : ya
    /// (the fused XOR bind of add_xor):
    ///   u = ones ^ x; carry = (ones & x) | (u & y); ones = u ^ y
    /// `carry` must not alias any input.
    void (*csa_pair)(Word* ones, Word* carry, const Word* x, const Word* ya, const Word* yb,
                     std::size_t n) noexcept;

    /// The phase-3 kernel: the csa_pair fold of (x, y) into `ones` whose
    /// weight-2 carry combines with twos_a into `twos`, spilling the
    /// weight-4 carry into `fours_a`.
    void (*csa_quad)(Word* ones, Word* twos, const Word* twos_a, Word* fours_a, const Word* x,
                     const Word* ya, const Word* yb, std::size_t n) noexcept;

    /// The phase-7 kernel: folds the eighth row all the way down, leaving
    /// the group's single weight-8 carry in `carry_out` (the caller ripples
    /// it into the planes, which are strided and stay scalar).
    void (*csa_oct)(Word* ones, Word* twos, const Word* twos_a, Word* fours, const Word* fours_a,
                    Word* carry_out, const Word* x, const Word* ya, const Word* yb,
                    std::size_t n) noexcept;

    /// Adds the word-major carry-save planes onto `accumulator`: for full
    /// word w in [0, n_words) and plane p in [0, n_planes),
    ///   accumulator[w * 64 + j] += bit j of planes[w * n_planes + p] << p.
    /// Only complete words: the caller handles a partial tail word itself
    /// (vector code writes all 64 columns of a word unconditionally).
    void (*unpack_planes)(const Word* planes, std::size_t n_words, std::size_t n_planes,
                          std::int32_t* accumulator) noexcept;

    /// Folds exactly eight rows (rows[0..8)) into the carry-save
    /// accumulators in one pass — arithmetic identical to the eight
    /// per-phase ColumnCounter steps (csa_pair/quad/oct over a fresh group),
    /// but with all intermediate values in registers instead of round-
    /// tripping the pending row through memory.  Leaves the group's single
    /// weight-8 carry in `carry_out`; no output aliases any input.  This is
    /// the BoundProductCache accumulation kernel: the cached encode path
    /// hands eight product rows at a time to ColumnCounter::add_rows.
    void (*csa_rows)(Word* ones, Word* twos, Word* fours, Word* carry_out,
                     const Word* const* rows, std::size_t n) noexcept;

    /// The fused encode→distance kernel: accumulates n_rows bit rows
    /// (rows_a[r], XORed with rows_b[r] when rows_b != nullptr — the bind
    /// step of the uncached encode path), binarizes the per-column counts
    /// against n_rows / 2, and scores the never-materialized query against
    /// n_classes class hypervectors:
    ///   distances[c] = Hamming(sign(sum of rows), class_rows[c])
    /// Per word block the Harley–Seal count planes live in registers/L1; the
    /// query bits come from a bit-sliced lexicographic compare of the planes
    /// against the threshold, ties (count == n_rows/2, even n_rows only) go
    /// through `ties` (see TieResolver; may be nullptr when n_rows is odd).
    /// Requirements: 1 <= n_rows <= kMaxFusedRows; rows carry clean tails
    /// (tail columns count 0 and can never tie, so the query tail stays
    /// clean and class tails must be clean too, as BinaryHV guarantees).
    /// Bit-identical to encode_binary_into + per-class hamming() on every
    /// backend, including the RNG draw order of tie breaks.
    void (*fused_hamming_scores)(const Word* const* rows_a, const Word* const* rows_b,
                                 std::size_t n_rows, const Word* const* class_rows,
                                 std::size_t n_classes, std::size_t n_words, TieResolver ties,
                                 void* tie_ctx, std::uint64_t* distances) noexcept;
};

/// The reference backend (always available).
const KernelBackend& portable_backend() noexcept;

/// Compiled-in ISA backends; nullptr when the toolchain could not build them
/// (missing -m flags support or the wrong target arch).  Availability at
/// *run* time additionally requires cpu_supports(kind).
const KernelBackend* neon_backend() noexcept;
const KernelBackend* avx2_backend() noexcept;
const KernelBackend* avx512_backend() noexcept;

/// True when the running CPU can execute the given backend (portable: always).
bool cpu_supports(Backend kind) noexcept;

/// True when the backend is compiled into this binary (portable: always).
bool compiled(Backend kind) noexcept;

/// True when the backend is compiled in AND the CPU supports it.
bool available(Backend kind) noexcept;

/// Parses "portable" / "neon" / "avx2" / "avx512"; nullopt for anything else.
std::optional<Backend> parse_backend(std::string_view name) noexcept;

/// The backend's canonical name ("portable", "neon", "avx2", "avx512").
const char* backend_name(Backend kind) noexcept;

/// Every backend this build knows of, ascending (portable first) — including
/// ones not compiled in or not runnable here; pair with compiled()/
/// available() for roster listings.
std::vector<Backend> all_backends();

/// Every backend available on this host, ascending (portable first).
std::vector<Backend> available_backends();

/// The backend auto-detection would pick for `env_value` (the content of
/// HDLOCK_KERNEL_BACKEND, empty/unknown/unavailable = best available) —
/// split out pure so the env contract is unit-testable without setenv.
Backend choose_backend(std::string_view env_value) noexcept;

/// The active backend.  First call resolves it: HDLOCK_KERNEL_BACKEND if set
/// and available, otherwise the best available.  Hot paths cache the pointer
/// per call site, so set_backend() mid-computation affects the *next*
/// operation, not one in flight.
const KernelBackend& active() noexcept;

/// The active backend's identity/name (for reports and logs).
Backend active_kind() noexcept;
inline const char* active_name() noexcept { return backend_name(active_kind()); }

/// Pins the process-global backend.  Throws hdlock::ConfigError when the
/// backend is not compiled in or the CPU lacks the ISA.  Returns the
/// previously active backend so tests can restore it.
Backend set_backend(Backend kind);

/// Space-separated SIMD feature list of the running CPU relevant to the
/// compiled backends (e.g. "avx2 avx512f avx512bw avx512vpopcntdq" on x86,
/// "asimd" on aarch64); empty on hosts with none.  Recorded in the eval::
/// JSON context.
std::string cpu_feature_string();

/// RAII pin for tests: set_backend(kind) now, restore the previous backend
/// on destruction (unless release()d).
class ScopedBackend {
public:
    explicit ScopedBackend(Backend kind) : previous_(set_backend(kind)) {}
    ~ScopedBackend() {
        if (armed_) set_backend(previous_);
    }
    ScopedBackend(const ScopedBackend&) = delete;
    ScopedBackend& operator=(const ScopedBackend&) = delete;

    /// Dismisses the pin: the pinned backend stays active past destruction.
    /// Returns the backend the destructor would have restored, so a caller
    /// taking over ownership of the restore can still perform it.
    Backend release() noexcept {
        armed_ = false;
        return previous_;
    }

private:
    Backend previous_;
    bool armed_ = true;
};

namespace detail {

/// Scalar word-range loops shared by the vector backends' tail handling.
/// Non-inline on purpose (compiled once, in kernels.cpp, at the baseline
/// ISA) so the -m flagged translation units can call them without the ODR
/// hazard of instantiating common code under a higher ISA.

/// csa_rows over words [word_begin, word_end).
void csa_rows_words(Word* ones, Word* twos, Word* fours, Word* carry_out,
                    const Word* const* rows, std::size_t word_begin,
                    std::size_t word_end) noexcept;

/// fused_hamming_scores over words [word_begin, word_end), accumulating into
/// distances (the caller zeroes them once up front).
void fused_hamming_words(const Word* const* rows_a, const Word* const* rows_b,
                         std::size_t n_rows, const Word* const* class_rows,
                         std::size_t n_classes, std::size_t word_begin, std::size_t word_end,
                         TieResolver ties, void* tie_ctx, std::uint64_t* distances) noexcept;

}  // namespace detail

}  // namespace hdlock::util::kernels
