#pragma once

/// \file timer.hpp
/// Monotonic wall-clock timing for the experiment harnesses.

#include <chrono>

namespace hdlock::util {

class WallTimer {
public:
    WallTimer() : start_(clock::now()) {}

    void reset() { start_ = clock::now(); }

    double elapsed_seconds() const {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    double elapsed_ms() const { return elapsed_seconds() * 1e3; }

private:
    // hdlock-lint: allow(nondeterminism) — WallTimer IS the sanctioned timing
    // context; every elapsed value feeds timing-only report fields that the
    // deterministic dumps strip before byte comparison.
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

}  // namespace hdlock::util
