#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "util/error.hpp"

namespace hdlock::util {

ThreadPool::ThreadPool(std::size_t n_workers) {
    n_workers = std::max<std::size_t>(n_workers, 1);
    workers_.reserve(n_workers);
    for (std::size_t slot = 0; slot < n_workers; ++slot) {
        workers_.emplace_back(Thread([this, slot] { worker_loop_(slot); }));
    }
}

ThreadPool::~ThreadPool() {
    {
        const MutexLock lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(Task task) {
    HDLOCK_EXPECTS(task != nullptr, "ThreadPool::submit: empty task");
    {
        const MutexLock lock(mutex_);
        HDLOCK_EXPECTS(!stop_, "ThreadPool::submit: pool is shutting down");
        queue_.push_back(std::move(task));
    }
    wake_.notify_one();
}

void ThreadPool::worker_loop_(std::size_t slot) {
    for (;;) {
        Task task;
        {
            const MutexLock lock(mutex_);
            while (!stop_ && queue_.empty()) wake_.wait(mutex_);
            if (queue_.empty()) return;  // stop_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task(slot);
    }
}

void parallel_for(ThreadPool& pool, std::size_t n, std::size_t n_chunks,
                  const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
    if (n == 0) return;
    n_chunks = std::clamp<std::size_t>(n_chunks, 1, n);
    const std::size_t chunk = (n + n_chunks - 1) / n_chunks;
    n_chunks = (n + chunk - 1) / chunk;  // drop chunks stranded past the end

    if (n_chunks == 1) {
        body(0, n, 0);  // no dispatch cost for the degenerate fan-out
        return;
    }

    // Per-call completion state lives on the caller's stack: the caller
    // blocks until remaining hits zero, so the workers' references stay
    // valid for exactly as long as they are used.
    struct Sync {
        Mutex mutex;
        CondVar done;
        std::size_t remaining HDLOCK_GUARDED_BY(mutex) = 0;
        std::exception_ptr error HDLOCK_GUARDED_BY(mutex);
    } sync;
    {
        const MutexLock lock(sync.mutex);
        sync.remaining = n_chunks;
    }

    std::size_t submitted = 0;
    std::exception_ptr submit_error;
    try {
        for (std::size_t c = 0; c < n_chunks; ++c) {
            const std::size_t begin = c * chunk;
            const std::size_t end = std::min(begin + chunk, n);
            pool.submit([&sync, &body, begin, end](std::size_t slot) {
                std::exception_ptr error;
                try {
                    body(begin, end, slot);
                } catch (...) {
                    error = std::current_exception();
                }
                const MutexLock lock(sync.mutex);
                if (error && !sync.error) sync.error = error;
                // Notify while still holding the lock: the instant the
                // caller can observe remaining == 0 it may destroy `sync`,
                // so the cv access must happen-before the unlock.
                if (--sync.remaining == 0) sync.done.notify_one();
            });
            ++submitted;
        }
    } catch (...) {
        // submit() itself failed (e.g. bad_alloc).  Chunks already in the
        // pool still hold references to sync/body on this stack frame, so
        // unwinding now would be use-after-scope: strike the never-submitted
        // chunks from the count, drain the in-flight ones, then rethrow.
        submit_error = std::current_exception();
        const MutexLock lock(sync.mutex);
        sync.remaining -= n_chunks - submitted;
    }

    std::exception_ptr worker_error;
    {
        const MutexLock lock(sync.mutex);
        while (sync.remaining != 0) sync.done.wait(sync.mutex);
        worker_error = sync.error;
    }
    if (submit_error) std::rethrow_exception(submit_error);
    if (worker_error) std::rethrow_exception(worker_error);
}

}  // namespace hdlock::util
