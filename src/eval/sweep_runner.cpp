#include "eval/sweep_runner.hpp"

#include <atomic>

#include "util/error.hpp"
#include "util/sync.hpp"
#include "util/timer.hpp"

namespace hdlock::eval {

std::size_t ScenarioRunReport::n_errors() const noexcept {
    std::size_t count = 0;
    for (const auto& trial : trials) {
        if (!trial.ok()) ++count;
    }
    return count;
}

std::size_t SweepRunner::resolved_threads(std::size_t n_trials) const noexcept {
    std::size_t requested =
        options_.n_threads != 0 ? options_.n_threads : util::hardware_concurrency();
    return std::max<std::size_t>(1, std::min(requested, n_trials));
}

ScenarioRunReport SweepRunner::run(const Scenario& scenario) const {
    if (options_.smoke && options_.full) {
        throw ConfigError("SweepRunner: smoke and full are mutually exclusive");
    }
    ScenarioRunReport report;
    report.info = scenario.info();
    report.options = options_;

    util::WallTimer total_timer;
    std::vector<TrialSpec> plan = scenario.plan(options_);
    report.n_planned = plan.size();
    if (options_.max_trials != 0 && plan.size() > options_.max_trials) {
        plan.resize(options_.max_trials);
    }
    report.trials.resize(plan.size());

    const std::uint64_t scenario_seed = derive_scenario_seed(options_, report.info.name);
    for (std::size_t i = 0; i < plan.size(); ++i) {
        report.trials[i].spec = plan[i];
        report.trials[i].seed = derive_trial_seed(options_, report.info.name, i);
    }

    const auto run_one = [&](std::size_t index) {
        TrialResult& result = report.trials[index];
        TrialContext context;
        context.index = index;
        context.seed = result.seed;
        context.scenario_seed = scenario_seed;
        context.smoke = options_.smoke;
        context.full = options_.full;
        util::WallTimer timer;
        try {
            result.metrics = scenario.run_trial(result.spec, context);
        } catch (const std::exception& error) {
            result.error = error.what();
            if (result.error.empty()) result.error = "unknown error";
        }
        result.seconds = timer.elapsed_seconds();
    };

    const std::size_t n_workers = resolved_threads(plan.size());
    if (n_workers <= 1) {
        for (std::size_t i = 0; i < plan.size(); ++i) run_one(i);
    } else {
        // Dynamic balancing over an atomic cursor: trial costs vary wildly
        // (key sizes, attack budgets), so workers pull indices instead of
        // taking fixed ranges.  util::Thread joins on destruction, so an
        // exception past this point cannot leak a runaway worker.
        std::atomic<std::size_t> cursor{0};
        std::vector<util::Thread> workers;
        workers.reserve(n_workers);
        for (std::size_t w = 0; w < n_workers; ++w) {
            workers.emplace_back(util::Thread([&] {
                for (std::size_t index = cursor.fetch_add(1); index < report.trials.size();
                     index = cursor.fetch_add(1)) {
                    run_one(index);
                }
            }));
        }
        for (auto& worker : workers) worker.join();
    }

    report.total_seconds = total_timer.elapsed_seconds();
    return report;
}

}  // namespace hdlock::eval
