/// \file scenario_beyond.cpp
/// Beyond-paper sweeps — the "as many scenarios as you can imagine" side of
/// the harness, exercising axes the paper fixes:
///
///  - "lock-grid": accuracy and attack complexity over the lock-depth x
///    dimension grid (L x D).  The paper plots accuracy vs. L at one D
///    (Fig. 8) and complexity vs. D at fixed L (Fig. 7); the grid shows both
///    claims hold jointly — accuracy stays flat across the whole plane while
///    log10(guesses) climbs with every step.
///  - "noise-robustness": HDXplore-style input-perturbation check.  Gaussian
///    noise on the test features degrades a locked (L = 2) model and the
///    unprotected baseline identically — the privileged encoding changes
///    where hypervectors live, not how gracefully they degrade.
///  - "ngram-lock": the n-gram encoder workload (text/voice/DNA family).
///    Locking the symbol memory via Eq. 9 products costs no accuracy while
///    multiplying the mapping search space — the defense generalizes beyond
///    record encoders.

#include <cmath>
#include <memory>

#include "core/complexity.hpp"
#include "core/locked_encoder.hpp"
#include "data/synthetic.hpp"
#include "eval/registry.hpp"
#include "eval/scenarios/scenarios.hpp"
#include "hdc/classifier.hpp"
#include "hdc/model.hpp"
#include "hdc/ngram_encoder.hpp"
#include "util/rng.hpp"

namespace hdlock::eval::scenarios {

namespace {

// ---------------------------------------------------------------------------
// lock-grid
// ---------------------------------------------------------------------------

data::SyntheticBenchmark grid_benchmark(bool smoke) {
    auto spec = data::pamap_like();  // 75 features: the cheapest preset
    spec.n_train = smoke ? 240 : 400;
    spec.n_test = smoke ? 100 : 150;
    return data::make_benchmark(spec);
}

Json run_lock_grid_trial(const TrialSpec& spec, const TrialContext& context) {
    const auto dim = static_cast<std::size_t>(spec.params.at("dim").as_int());
    const auto layers = static_cast<std::size_t>(spec.params.at("layers").as_int());
    const auto benchmark = grid_benchmark(context.smoke);

    DeploymentConfig config;
    config.dim = dim;
    config.n_features = benchmark.train.n_features();
    config.n_levels = benchmark.spec.n_levels;
    config.n_layers = layers;
    config.seed = context.seed;
    const Deployment deployment = provision(config);

    hdc::PipelineConfig pipeline;
    pipeline.train.kind = hdc::ModelKind::binary;
    pipeline.train.retrain_epochs = 10;
    pipeline.train.seed = util::hash_mix(context.seed, 0x9e1d);
    const auto classifier =
        hdc::HdcClassifier::fit(benchmark.train, deployment.encoder, pipeline);

    const std::size_t pool = deployment.store->pool_size();
    const auto footprint =
        complexity::footprint(config.n_features, dim, pool, layers, config.n_levels,
                              static_cast<std::size_t>(benchmark.train.n_classes));

    Json metrics = Json::object();
    metrics["accuracy"] = classifier.evaluate(benchmark.test);
    metrics["train_accuracy"] = classifier.train_accuracy();
    metrics["log10_guesses"] = complexity::log10_guesses(config.n_features, dim, pool, layers);
    metrics["log10_gain"] = complexity::security_gain_log10(config.n_features, dim, pool, layers);
    metrics["secure_key_bits"] = footprint.secure_key_bits;
    return metrics;
}

std::vector<TrialSpec> plan_lock_grid(const RunOptions& options) {
    const std::vector<std::size_t> dims =
        options.smoke ? std::vector<std::size_t>{512, 1024}
                      : std::vector<std::size_t>{2048, 4096, 8192};
    const std::size_t max_layers = options.smoke ? 2 : 3;
    std::vector<TrialSpec> plan;
    for (const std::size_t dim : dims) {
        for (std::size_t layers = 0; layers <= max_layers; ++layers) {
            TrialSpec trial;
            // Appends instead of operator+ chains: GCC 12's -Wrestrict
            // false-positives on `const char* + std::string&&` at -O2+.
            trial.name = "D";
            trial.name += std::to_string(dim);
            trial.name += "-L";
            trial.name += std::to_string(layers);
            trial.params["dim"] = dim;
            trial.params["layers"] = layers;
            plan.push_back(std::move(trial));
        }
    }
    return plan;
}

// ---------------------------------------------------------------------------
// noise-robustness
// ---------------------------------------------------------------------------

data::Dataset perturb(const data::Dataset& dataset, double sigma, std::uint64_t seed) {
    data::Dataset noisy = dataset;
    util::Xoshiro256ss rng(seed);
    for (std::size_t r = 0; r < noisy.X.rows(); ++r) {
        for (std::size_t c = 0; c < noisy.X.cols(); ++c) {
            noisy.X(r, c) += static_cast<float>(rng.next_normal(0.0, sigma));
        }
    }
    return noisy;
}

/// One trial per model kind; the sigma axis is a series WITHIN the trial so
/// the two expensive classifier fits happen once and every noise level is
/// evaluated against the same fitted models (which is also the cleaner
/// experiment: one model pair, many perturbations).
Json run_noise_trial(const TrialSpec& spec, const TrialContext& context) {
    const std::size_t dim = context.smoke ? 1024 : 4096;
    const auto benchmark = grid_benchmark(context.smoke);
    const auto kind = spec.params.at("kind").as_string() == "binary"
                          ? hdc::ModelKind::binary
                          : hdc::ModelKind::non_binary;

    const auto fit_with_layers = [&](std::size_t layers) {
        DeploymentConfig config;
        config.dim = dim;
        config.n_features = benchmark.train.n_features();
        config.n_levels = benchmark.spec.n_levels;
        config.n_layers = layers;
        config.seed = context.seed;
        const Deployment deployment = provision(config);
        hdc::PipelineConfig pipeline;
        pipeline.train.kind = kind;
        pipeline.train.retrain_epochs = 10;
        pipeline.train.seed = util::hash_mix(context.seed, layers);
        return hdc::HdcClassifier::fit(benchmark.train, deployment.encoder, pipeline);
    };
    const auto plain = fit_with_layers(0);
    const auto locked = fit_with_layers(2);

    const std::vector<double> sigmas = context.smoke
                                           ? std::vector<double>{0.0, 0.1, 0.4}
                                           : std::vector<double>{0.0, 0.05, 0.1, 0.2, 0.4};
    const double plain_clean = plain.evaluate(benchmark.test);
    const double locked_clean = locked.evaluate(benchmark.test);
    Json metrics = Json::object();
    metrics["dim"] = dim;
    metrics["accuracy_plain_clean"] = plain_clean;
    metrics["accuracy_locked_clean"] = locked_clean;

    Json rows = Json::array();
    double max_abs_delta = 0.0;
    for (const double sigma : sigmas) {
        // Both models see the SAME perturbed test set so the delta isolates
        // the encoding, not the noise draw.  sigma = 0 reuses the clean
        // accuracies already computed above.
        const bool clean = sigma <= 0.0;
        const auto noisy_test =
            clean ? benchmark.test
                  : perturb(benchmark.test, sigma, util::hash_mix(context.seed, 0xF00D));
        const double plain_noisy = clean ? plain_clean : plain.evaluate(noisy_test);
        const double locked_noisy = clean ? locked_clean : locked.evaluate(noisy_test);
        max_abs_delta = std::max(max_abs_delta, std::abs(locked_noisy - plain_noisy));
        Json row = Json::object();
        row["sigma"] = sigma;
        row["accuracy_plain"] = plain_noisy;
        row["accuracy_locked"] = locked_noisy;
        row["locked_minus_plain"] = locked_noisy - plain_noisy;
        rows.push_back(std::move(row));
    }
    metrics["max_abs_delta"] = max_abs_delta;
    metrics["series"]["accuracy_vs_sigma"] = std::move(rows);
    return metrics;
}

std::vector<TrialSpec> plan_noise(const RunOptions&) {
    std::vector<TrialSpec> plan;
    for (const char* kind : {"binary", "nonbinary"}) {
        TrialSpec trial;
        trial.name = std::string("kind=") + kind;
        trial.params["kind"] = kind;
        plan.push_back(std::move(trial));
    }
    return plan;
}

// ---------------------------------------------------------------------------
// ngram-lock
// ---------------------------------------------------------------------------

constexpr std::size_t kAlphabet = 12;
constexpr int kClasses = 3;
constexpr std::size_t kSeqLen = 64;

/// Synthetic "languages": each class walks the alphabet with its own stride
/// (the sequence_classification example's generative process).
std::vector<int> language_sample(int cls, util::Xoshiro256ss& rng) {
    std::vector<int> sequence(kSeqLen);
    sequence[0] = static_cast<int>(rng.next_below(kAlphabet));
    for (std::size_t t = 1; t < kSeqLen; ++t) {
        if (rng.next_double() < 0.8) {
            sequence[t] = static_cast<int>(
                (static_cast<std::size_t>(sequence[t - 1]) +
                 static_cast<std::size_t>(cls) * 2 + 1) %
                kAlphabet);
        } else {
            sequence[t] = static_cast<int>(rng.next_below(kAlphabet));
        }
    }
    return sequence;
}

hdc::EncodedBatch encode_corpus(const hdc::NGramEncoder& encoder, std::size_t per_class,
                                std::uint64_t seed) {
    util::Xoshiro256ss rng(seed);
    hdc::EncodedBatch batch;
    for (std::size_t s = 0; s < per_class * static_cast<std::size_t>(kClasses); ++s) {
        const int cls = static_cast<int>(s % kClasses);
        const auto sequence = language_sample(cls, rng);
        batch.non_binary.push_back(encoder.encode(sequence));
        batch.binary.push_back(encoder.encode_binary(sequence));
        batch.labels.push_back(cls);
    }
    return batch;
}

double ngram_accuracy(const hdc::NGramEncoder& encoder, std::size_t per_class_train,
                      std::size_t per_class_test, std::uint64_t seed) {
    const auto train = encode_corpus(encoder, per_class_train, util::hash_mix(seed, 0xA));
    const auto test = encode_corpus(encoder, per_class_test, util::hash_mix(seed, 0xB));
    hdc::TrainConfig config;
    config.kind = hdc::ModelKind::binary;
    config.retrain_epochs = 8;
    config.seed = util::hash_mix(seed, 0xC);
    const auto model = hdc::HdcModel::train(train, kClasses, config);
    return model.evaluate(test);
}

Json run_ngram_trial(const TrialSpec& spec, const TrialContext& context) {
    const auto gram = static_cast<std::size_t>(spec.params.at("gram").as_int());
    const std::size_t dim = context.smoke ? 2048 : 8192;
    const std::size_t per_class_train = context.smoke ? 40 : 60;
    const std::size_t per_class_test = context.smoke ? 20 : 30;
    const std::uint64_t tie_seed = 77;

    // Unprotected symbol memory: alphabet hypervectors in plain memory,
    // exactly like record-encoder FeaHVs — same vulnerability.
    const hdc::NGramEncoder plain(
        hdc::generate_symbol_hvs(dim, kAlphabet, util::hash_mix(context.seed, 1)), gram,
        tie_seed);

    // HDLock-protected: symbols are Eq. 9 products over a public pool; the
    // alphabet plays the role of the feature set.
    DeploymentConfig lock_config;
    lock_config.dim = dim;
    lock_config.n_features = kAlphabet;
    lock_config.n_levels = 2;
    lock_config.n_layers = 2;
    lock_config.seed = util::hash_mix(context.seed, 2);
    const Deployment deployment = provision(lock_config);
    const hdc::NGramEncoder locked(
        materialize_locked_symbols(*deployment.store, deployment.secure->key()), gram, tie_seed);

    const double accuracy_plain =
        ngram_accuracy(plain, per_class_train, per_class_test, context.seed);
    const double accuracy_locked =
        ngram_accuracy(locked, per_class_train, per_class_test, context.seed);

    Json metrics = Json::object();
    metrics["dim"] = dim;
    metrics["alphabet"] = kAlphabet;
    metrics["accuracy_plain"] = accuracy_plain;
    metrics["accuracy_locked"] = accuracy_locked;
    metrics["drift"] = std::abs(accuracy_locked - accuracy_plain);
    metrics["log10_guesses_plain"] = complexity::log10_guesses(kAlphabet, dim, kAlphabet, 0);
    metrics["log10_guesses_locked"] = complexity::log10_guesses(kAlphabet, dim, kAlphabet, 2);
    return metrics;
}

std::vector<TrialSpec> plan_ngram(const RunOptions& options) {
    const std::vector<std::size_t> grams =
        options.smoke ? std::vector<std::size_t>{3} : std::vector<std::size_t>{2, 3};
    std::vector<TrialSpec> plan;
    for (const std::size_t gram : grams) {
        TrialSpec trial;
        trial.name = "gram=" + std::to_string(gram);
        trial.params["gram"] = gram;
        plan.push_back(std::move(trial));
    }
    return plan;
}

}  // namespace

void register_beyond_paper(ScenarioRegistry& registry) {
    {
        ScenarioInfo info;
        info.name = "lock-grid";
        info.paper_ref = "beyond-paper";
        info.description =
            "accuracy stays flat while attack complexity climbs over the L x D grid";
        registry.add(std::make_shared<SimpleScenario>(std::move(info), plan_lock_grid,
                                                      run_lock_grid_trial));
    }
    {
        ScenarioInfo info;
        info.name = "noise-robustness";
        info.paper_ref = "beyond-paper";
        info.description =
            "locked and unprotected models degrade identically under test-input noise";
        registry.add(
            std::make_shared<SimpleScenario>(std::move(info), plan_noise, run_noise_trial));
    }
    {
        ScenarioInfo info;
        info.name = "ngram-lock";
        info.paper_ref = "beyond-paper";
        info.description =
            "locking the n-gram symbol memory costs no accuracy (defense generalizes)";
        registry.add(
            std::make_shared<SimpleScenario>(std::move(info), plan_ngram, run_ngram_trial));
    }
}

}  // namespace hdlock::eval::scenarios
