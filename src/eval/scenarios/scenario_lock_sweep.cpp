/// \file scenario_lock_sweep.cpp
/// Scenarios "fig5" and "fig6" — HDLock security validation (Sec. 4.2,
/// Eq. 11-13): attack one locked FeaHV at MNIST scale with three of the four
/// sub-key parameters {k_11, index(B_11), k_12, index(B_12)} known, sweeping
/// the last.  The two figures run the same four sweeps and differ only in
/// the oracle (fig5 binary, fig6 non-binary) and the plotted criterion
/// (Hamming mismatch vs. cosine).  All four trials of a run attack the same
/// deployment (scenario seed), per the paper's setup; this file is the
/// registry replacement for the old bench/lock_sweep_common.hpp duplication.

#include <memory>

#include "attack/lock_attack.hpp"
#include "core/locked_encoder.hpp"
#include "eval/registry.hpp"
#include "eval/scenarios/scenarios.hpp"

namespace hdlock::eval::scenarios {

namespace {

struct SweepCase {
    const char* name;     ///< stable trial name
    const char* subplot;  ///< the paper's subplot label
    std::size_t layer;
    attack::LockParameter parameter;
};

constexpr SweepCase kSweepCases[] = {
    {"k11", "(a) k_{1,1}", 0, attack::LockParameter::rotation},
    {"B11", "(b) index(B_{1,1})", 0, attack::LockParameter::base_index},
    {"k12", "(c) k_{1,2}", 1, attack::LockParameter::rotation},
    {"B12", "(d) index(B_{1,2})", 1, attack::LockParameter::base_index},
};

Json run_sweep_trial(const TrialSpec& spec, const TrialContext& context, bool binary_oracle,
                     bool cosine_view) {
    DeploymentConfig config;
    config.dim = context.smoke ? 1024 : 10000;
    config.n_features = context.smoke ? 64 : 784;
    config.pool_size = config.n_features;  // P = N, the paper's footnote 2
    config.n_levels = 16;
    config.n_layers = 2;
    config.seed = context.scenario_seed;
    const Deployment deployment = provision(config);

    attack::LockSweepConfig sweep_config;
    sweep_config.feature = 0;
    sweep_config.layer = static_cast<std::size_t>(spec.params.at("layer").as_int());
    sweep_config.parameter = spec.params.at("parameter").as_string() == "rotation"
                                 ? attack::LockParameter::rotation
                                 : attack::LockParameter::base_index;
    sweep_config.binary_oracle = binary_oracle;

    const attack::EncodingOracle oracle(deployment.encoder);
    const auto result =
        attack::sweep_lock_parameter(*deployment.store, oracle, deployment.secure->key(),
                                     deployment.secure->value_mapping(), sweep_config);

    const auto& truth = deployment.secure->key().entry(0, sweep_config.layer);
    const std::size_t correct_value = sweep_config.parameter == attack::LockParameter::rotation
                                          ? truth.rotation
                                          : truth.base_index;
    // fig6 renders the paper's cosine (1 = correct); fig5 the distance-like
    // score (0 = correct).
    const auto render_score = [cosine_view](double score) {
        return cosine_view ? 1.0 - score : score;
    };

    Json metrics = Json::object();
    metrics["dim"] = config.dim;
    metrics["domain_size"] = sweep_config.parameter == attack::LockParameter::rotation
                                 ? config.dim
                                 : config.n_features;
    metrics["correct_value"] = correct_value;
    metrics["best_guess"] = result.best_guess;
    metrics["correct_score"] = render_score(result.scores[correct_value]);
    metrics["runner_up_score"] = render_score(result.runner_up_score);
    metrics["deciding_positions"] = result.deciding_positions;
    metrics["oracle_queries"] = result.oracle_queries;
    metrics["attack_succeeds"] = result.best_guess == correct_value;

    Json rows = Json::array();
    for (std::size_t guess = 0; guess < result.scores.size(); ++guess) {
        Json row = Json::object();
        row["guess"] = guess;
        row["score"] = render_score(result.scores[guess]);
        rows.push_back(std::move(row));
    }
    metrics["series"]["scores"] = std::move(rows);
    return metrics;
}

std::vector<TrialSpec> plan_sweeps(const RunOptions&) {
    std::vector<TrialSpec> plan;
    for (const auto& sweep_case : kSweepCases) {
        TrialSpec trial;
        trial.name = sweep_case.name;
        trial.params["subplot"] = sweep_case.subplot;
        trial.params["layer"] = sweep_case.layer;
        trial.params["parameter"] =
            sweep_case.parameter == attack::LockParameter::rotation ? "rotation" : "base_index";
        plan.push_back(std::move(trial));
    }
    return plan;
}

void register_one(ScenarioRegistry& registry, ScenarioInfo info, bool binary_oracle,
                  bool cosine_view) {
    registry.add(std::make_shared<SimpleScenario>(
        std::move(info), plan_sweeps,
        [binary_oracle, cosine_view](const TrialSpec& spec, const TrialContext& context) {
            return run_sweep_trial(spec, context, binary_oracle, cosine_view);
        }));
}

}  // namespace

void register_lock_sweeps(ScenarioRegistry& registry) {
    ScenarioInfo fig5;
    fig5.name = "fig5";
    fig5.paper_ref = "Fig. 5";
    fig5.description =
        "single-parameter sub-key sweeps against HDLock, binary oracle (Hamming criterion)";
    register_one(registry, std::move(fig5), /*binary_oracle=*/true, /*cosine_view=*/false);

    ScenarioInfo fig6;
    fig6.name = "fig6";
    fig6.paper_ref = "Fig. 6";
    fig6.description =
        "single-parameter sub-key sweeps against HDLock, non-binary oracle (cosine criterion)";
    register_one(registry, std::move(fig6), /*binary_oracle=*/false, /*cosine_view=*/true);
}

}  // namespace hdlock::eval::scenarios
