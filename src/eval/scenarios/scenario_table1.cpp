/// \file scenario_table1.cpp
/// Scenario "table1" — Table 1: the reasoning attack on unprotected HDC
/// models across the five benchmarks, original vs. reconstructed (stolen)
/// accuracy plus reasoning cost, for non-binary and binary models.  One
/// trial per (benchmark, kind): ten independent end-to-end theft experiments
/// fanned out across workers.  The carried-over claims: the recovered
/// accuracy matches the original (the IP leaks completely) and the
/// reasoning cost is ordered by the N^2 guess count.

#include <memory>

#include "api/api.hpp"
#include "attack/ip_theft.hpp"
#include "data/synthetic.hpp"
#include "eval/registry.hpp"
#include "eval/scenarios/paper_presets.hpp"
#include "eval/scenarios/scenarios.hpp"

namespace hdlock::eval::scenarios {

namespace {

Json run_table1_trial(const TrialSpec& spec, const TrialContext& context) {
    const auto scaled = smoke_scaled(
        paper_spec_by_name(spec.params.at("benchmark").as_string()), context.smoke);
    const auto benchmark = data::make_benchmark(scaled);

    attack::IpTheftConfig config;
    config.kind = kind_from_params(spec);
    config.dim = context.smoke ? 2048 : 10000;
    config.n_levels = scaled.n_levels;
    config.retrain_epochs = context.smoke ? 5 : 10;
    config.seed = context.seed;

    // The victim deployment comes from the api facade; the attack runs
    // against its Deployment bridge (ground truth needed for scoring only).
    DeploymentConfig victim;
    victim.dim = config.dim;
    victim.n_features = benchmark.train.n_features();
    victim.n_levels = config.n_levels;
    victim.n_layers = 0;  // the vulnerable baseline of Sec. 3
    victim.seed = config.seed;
    const api::Owner owner = api::Owner::provision(victim);

    const auto report =
        attack::steal_model(owner.deployment(), benchmark.train, benchmark.test, config);

    Json metrics = Json::object();
    metrics["dim"] = config.dim;
    metrics["original_accuracy"] = report.original_accuracy;
    metrics["recovered_accuracy"] = report.recovered_accuracy;
    metrics["accuracy_gap"] = report.original_accuracy - report.recovered_accuracy;
    metrics["value_mapping_accuracy"] = report.value_mapping_accuracy;
    metrics["feature_mapping_accuracy"] = report.feature_mapping_accuracy;
    metrics["guesses"] = report.guesses;
    metrics["oracle_queries"] = report.oracle_queries;
    metrics["timing"]["reasoning_seconds"] = report.reasoning_seconds;
    return metrics;
}

}  // namespace

void register_table1(ScenarioRegistry& registry) {
    ScenarioInfo info;
    info.name = "table1";
    info.paper_ref = "Table 1";
    info.description =
        "IP theft on unprotected HDC models: reasoning cost and recovered-model accuracy";
    registry.add(std::make_shared<SimpleScenario>(
        std::move(info), [](const RunOptions&) { return plan_benchmark_kind_trials(); },
        run_table1_trial));
}

}  // namespace hdlock::eval::scenarios
