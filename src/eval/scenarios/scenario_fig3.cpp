/// \file scenario_fig3.cpp
/// Scenario "fig3" — Fig. 3: Hamming distances between the feature-mapping
/// guesses and the ground truth when attacking one pixel of an unprotected
/// MNIST-scale encoder (Sec. 3.2, Eq. 7/8).  One trial per oracle kind; both
/// trials probe the same deployment (scenario seed), exactly like the old
/// bench_fig3 binary.

#include <algorithm>
#include <memory>

#include "attack/feature_attack.hpp"
#include "core/locked_encoder.hpp"
#include "eval/registry.hpp"
#include "eval/scenarios/scenarios.hpp"
#include "util/stats.hpp"

namespace hdlock::eval::scenarios {

namespace {

Json run_fig3_trial(const TrialSpec& spec, const TrialContext& context) {
    DeploymentConfig config;
    config.dim = context.smoke ? 2048 : 10000;
    config.n_features = context.smoke ? 128 : 784;
    config.n_levels = 16;
    config.n_layers = 0;  // the vulnerable baseline of Sec. 3
    config.seed = context.scenario_seed;
    const Deployment deployment = provision(config);

    const bool binary = spec.params.at("oracle").as_string() == "binary";
    const auto& level_to_slot = deployment.secure->value_mapping();
    const std::size_t probe_feature = 0;
    const std::size_t correct_slot =
        deployment.secure->key().entry(probe_feature, 0).base_index;

    const attack::EncodingOracle oracle(deployment.encoder);
    const auto curve = attack::feature_guess_curve(*deployment.store, oracle, level_to_slot,
                                                   probe_feature, binary);

    std::vector<double> wrong;
    wrong.reserve(curve.distances.size() - 1);
    for (std::size_t n = 0; n < curve.distances.size(); ++n) {
        if (n != correct_slot) wrong.push_back(curve.distances[n]);
    }
    const double correct_distance = curve.distances[correct_slot];

    Json metrics = Json::object();
    metrics["dim"] = config.dim;
    metrics["n_features"] = config.n_features;
    metrics["correct_slot"] = correct_slot;
    metrics["correct_distance"] = correct_distance;
    metrics["wrong_min"] = *std::ranges::min_element(wrong);
    metrics["wrong_mean"] = util::mean(wrong);
    metrics["wrong_max"] = *std::ranges::max_element(wrong);
    // The non-binary oracle recovers the mapping exactly (distance 0); the
    // separation ratio is only meaningful with a non-zero floor.
    metrics["exact_recovery"] = correct_distance == 0.0;
    if (correct_distance > 0.0) {
        metrics["separation"] = *std::ranges::min_element(wrong) / correct_distance;
    }
    metrics["attack_succeeds"] = curve.best_candidate == correct_slot;

    Json rows = Json::array();
    for (std::size_t n = 0; n < curve.distances.size(); ++n) {
        Json row = Json::object();
        row["candidate"] = n;
        row["distance"] = curve.distances[n];
        rows.push_back(std::move(row));
    }
    metrics["series"]["guess_curve"] = std::move(rows);
    return metrics;
}

}  // namespace

void register_fig3(ScenarioRegistry& registry) {
    ScenarioInfo info;
    info.name = "fig3";
    info.paper_ref = "Fig. 3";
    info.description =
        "guess-vs-ground-truth distances attacking one feature of an unprotected encoder";
    registry.add(std::make_shared<SimpleScenario>(
        std::move(info),
        [](const RunOptions&) {
            std::vector<TrialSpec> plan;
            for (const char* oracle : {"binary", "nonbinary"}) {
                TrialSpec trial;
                trial.name = std::string("oracle=") + oracle;
                trial.params["oracle"] = oracle;
                plan.push_back(std::move(trial));
            }
            return plan;
        },
        run_fig3_trial));
}

}  // namespace hdlock::eval::scenarios
