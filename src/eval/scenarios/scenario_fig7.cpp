/// \file scenario_fig7.cpp
/// Scenario "fig7" — Fig. 7: adversarial guess counts (Sec. 5.2).  Three
/// closed-form trials ((a) D x P grid at L = 2, (b) L curves at D = 10,000,
/// the headline MNIST numbers) plus the empirical toy-scale joint searches
/// that validate the (D*P)^L formula by actually running the attack.  The
/// toy trials are the expensive ones and fan out across workers; their
/// wall-clock and the derived paper-scale extrapolation are timing metadata.

#include <cmath>
#include <memory>

#include "attack/lock_attack.hpp"
#include "core/complexity.hpp"
#include "core/locked_encoder.hpp"
#include "eval/registry.hpp"
#include "eval/scenarios/scenarios.hpp"
#include "util/timer.hpp"

namespace hdlock::eval::scenarios {

namespace {

constexpr std::size_t kMnistFeatures = 784;  // N of Sec. 4.2

Json closed_form_grid() {
    Json metrics = Json::object();
    Json rows = Json::array();
    for (std::size_t dim = 2000; dim <= 14000; dim += 2000) {
        for (std::size_t pool = 100; pool <= 1500; pool += 200) {
            Json row = Json::object();
            row["dim"] = dim;
            row["pool"] = pool;
            row["log10_guesses"] =
                complexity::log10_guesses(kMnistFeatures, dim, pool, /*n_layers=*/2);
            rows.push_back(std::move(row));
        }
    }
    metrics["n_points"] = rows.size();
    metrics["series"]["grid"] = std::move(rows);
    return metrics;
}

Json closed_form_layer_curves() {
    Json metrics = Json::object();
    Json rows = Json::array();
    for (std::size_t layers = 1; layers <= 5; ++layers) {
        for (const std::size_t pool : {100, 300, 500, 700}) {
            Json row = Json::object();
            row["layers"] = layers;
            row["pool"] = pool;
            row["log10_guesses"] = complexity::log10_guesses(kMnistFeatures, 10000, pool, layers);
            rows.push_back(std::move(row));
        }
    }
    metrics["n_points"] = rows.size();
    metrics["series"]["layer_curves"] = std::move(rows);
    return metrics;
}

Json headline_numbers() {
    // Sec. 4.2 / 5.2, MNIST with P = N = 784, D = 10,000; the paper quotes
    // 6.15e+05 / 6.15e+09 / 4.81e+16 and a 7.82e+10 gain.
    Json metrics = Json::object();
    metrics["log10_baseline"] = complexity::log10_guesses(kMnistFeatures, 10000, 784, 0);
    metrics["log10_one_layer"] = complexity::log10_guesses(kMnistFeatures, 10000, 784, 1);
    metrics["log10_two_layer"] = complexity::log10_guesses(kMnistFeatures, 10000, 784, 2);
    metrics["log10_gain_two_layer"] =
        complexity::security_gain_log10(kMnistFeatures, 10000, 784, 2);
    metrics["guesses_two_layer"] = complexity::format_log10(metrics["log10_two_layer"].as_double());
    return metrics;
}

Json run_toy_search(const TrialSpec& spec, const TrialContext& context) {
    const auto dim = static_cast<std::size_t>(spec.params.at("dim").as_int());
    const auto pool = static_cast<std::size_t>(spec.params.at("pool").as_int());
    const auto layers = static_cast<std::size_t>(spec.params.at("layers").as_int());

    DeploymentConfig config;
    config.dim = dim;
    config.n_features = 4;
    config.pool_size = pool;
    config.n_levels = 4;
    config.n_layers = layers;
    config.seed = context.seed;
    const Deployment deployment = provision(config);
    const attack::EncodingOracle oracle(deployment.encoder);

    util::WallTimer timer;
    const auto result = attack::exhaustive_feature_attack(
        *deployment.store, oracle, deployment.secure->value_mapping(), /*feature=*/0, layers,
        /*binary_oracle=*/true);
    const double seconds = timer.elapsed_seconds();

    const double expected =
        std::pow(static_cast<double>(dim * pool), static_cast<double>(layers));

    Json metrics = Json::object();
    metrics["guesses"] = result.guesses;
    metrics["expected_guesses"] = expected;
    metrics["guesses_match_closed_form"] =
        static_cast<double>(result.guesses) == expected;
    metrics["recovered"] = result.recovered_feature_hv == deployment.encoder->feature_hv(0);
    metrics["ties_at_best"] = result.ties_at_best;
    metrics["best_score"] = result.best_score;

    // Wall-clock at paper scale = measured per-guess cost scaled to
    // N * (D*P)^L guesses with D-proportional per-guess work.
    const double per_guess = seconds / static_cast<double>(result.guesses);
    metrics["timing"]["seconds"] = seconds;
    metrics["timing"]["log10_extrapolated_mnist_seconds"] =
        std::log10(per_guess * 10000.0 / static_cast<double>(dim)) +
        complexity::log10_guesses(kMnistFeatures, 10000, 784, layers);
    return metrics;
}

Json run_fig7_trial(const TrialSpec& spec, const TrialContext& context) {
    const std::string& kind = spec.params.at("kind").as_string();
    if (kind == "grid") return closed_form_grid();
    if (kind == "layer-curves") return closed_form_layer_curves();
    if (kind == "headline") return headline_numbers();
    return run_toy_search(spec, context);
}

std::vector<TrialSpec> plan_fig7(const RunOptions& options) {
    std::vector<TrialSpec> plan;
    for (const char* kind : {"grid", "layer-curves", "headline"}) {
        TrialSpec trial;
        trial.name = kind;
        trial.params["kind"] = kind;
        plan.push_back(std::move(trial));
    }

    struct ToyCase {
        std::size_t dim, pool, layers;
    };
    // L = 2 needs a few hundred dimensions: below that the flipped-index set
    // I is so small that thousands of wrong sub-keys match it by chance and
    // the toy search under-determines the key.
    const std::vector<ToyCase> cases = options.smoke
                                           ? std::vector<ToyCase>{{128, 3, 1}, {320, 4, 2}}
                                           : std::vector<ToyCase>{{128, 3, 1},
                                                                  {256, 4, 1},
                                                                  {384, 3, 2},
                                                                  {320, 4, 2}};
    for (const auto& toy : cases) {
        TrialSpec trial;
        trial.name = "toy-D" + std::to_string(toy.dim) + "-P" + std::to_string(toy.pool) +
                     "-L" + std::to_string(toy.layers);
        trial.params["kind"] = "toy";
        trial.params["dim"] = toy.dim;
        trial.params["pool"] = toy.pool;
        trial.params["layers"] = toy.layers;
        plan.push_back(std::move(trial));
    }
    return plan;
}

}  // namespace

void register_fig7(ScenarioRegistry& registry) {
    ScenarioInfo info;
    info.name = "fig7";
    info.paper_ref = "Fig. 7";
    info.description =
        "closed-form reasoning complexity N*(D*P)^L plus empirical toy-scale joint searches";
    registry.add(std::make_shared<SimpleScenario>(std::move(info), plan_fig7, run_fig7_trial));
}

}  // namespace hdlock::eval::scenarios
