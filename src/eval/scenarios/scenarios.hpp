#pragma once

/// \file scenarios.hpp
/// Registration hooks for the built-in scenarios, one per translation unit
/// under src/eval/scenarios/.  Explicit calls (from make_builtin_registry)
/// instead of static-initializer self-registration: no link-order games, no
/// dead-stripping surprises, and tests can build partial registries.

namespace hdlock::eval {

class ScenarioRegistry;

namespace scenarios {

void register_fig3(ScenarioRegistry& registry);
void register_lock_sweeps(ScenarioRegistry& registry);  ///< fig5 (binary) + fig6 (non-binary)
void register_fig7(ScenarioRegistry& registry);
void register_fig8(ScenarioRegistry& registry);
void register_fig9(ScenarioRegistry& registry);
void register_table1(ScenarioRegistry& registry);
void register_beyond_paper(ScenarioRegistry& registry);  ///< lock-grid, noise-robustness,
                                                         ///< ngram-lock
void register_router(ScenarioRegistry& registry);        ///< router-slo serving tier
void register_rotation(ScenarioRegistry& registry);      ///< key-rotation epoch hot swap

}  // namespace scenarios
}  // namespace hdlock::eval
