/// \file scenario_fig9.cpp
/// Scenario "fig9" — Fig. 9: encoding time of HDLock relative to the
/// baseline, on the parametric datapath model standing in for the paper's
/// Zynq UltraScale+ deployment.  Deterministic trials cover the relative
/// curves (all five benchmarks coincide; 1.0x at L = 1, the headline 1.21x
/// at L = 2, linear growth) and the MNIST cycle breakdown; the software
/// cross-check trials measure wall-clock (timing metadata) showing Eq. 9
/// materialization scales with L while per-sample encode does not.

#include <memory>

#include "core/locked_encoder.hpp"
#include "data/synthetic.hpp"
#include "eval/registry.hpp"
#include "eval/scenarios/scenarios.hpp"
#include "hw/pipeline_model.hpp"
#include "util/timer.hpp"

namespace hdlock::eval::scenarios {

namespace {

constexpr std::size_t kMaxLayers = 5;

Json relative_curves() {
    const hw::HwConfig hw_config;  // calibrated: II(2)/II(1) = 1.20 (~paper's 1.21)
    Json metrics = Json::object();
    metrics["datapath_width"] = hw_config.datapath_width;
    metrics["memory_ports"] = hw_config.memory_ports;
    Json rows = Json::array();
    for (const auto& spec : data::paper_benchmarks()) {
        const auto curve =
            hw::relative_time_curve(hw_config, 10000, spec.n_features, kMaxLayers);
        for (std::size_t layers = 1; layers <= curve.size(); ++layers) {
            Json row = Json::object();
            row["benchmark"] = spec.name;
            row["layers"] = layers;
            row["relative_time"] = curve[layers - 1];
            rows.push_back(std::move(row));
        }
    }
    metrics["series"]["relative_time"] = std::move(rows);
    return metrics;
}

Json cycle_breakdown() {
    const hw::HwConfig hw_config;
    Json metrics = Json::object();
    Json rows = Json::array();
    for (std::size_t layers = 0; layers <= kMaxLayers; ++layers) {
        const hw::EncoderPipelineModel model(hw_config, 10000, 784, layers);
        const auto cost = model.encode_cost();
        Json row = Json::object();
        row["layers"] = layers;
        row["cycles"] = cost.cycles;
        row["fetch_beats"] = cost.fetch_beats;
        row["accumulate_beats"] = cost.accumulate_beats;
        row["binarize_beats"] = cost.binarize_beats;
        row["fill_beats"] = cost.fill_beats;
        row["relative"] = model.relative_to_baseline();
        row["us_at_200mhz"] = cost.microseconds(hw_config.clock_mhz);
        rows.push_back(std::move(row));
    }
    // The paper's headline: two-layer overhead ~1.21x.
    metrics["two_layer_relative"] =
        hw::EncoderPipelineModel(hw_config, 10000, 784, 2).relative_to_baseline();
    metrics["series"]["cycle_breakdown"] = std::move(rows);
    return metrics;
}

Json software_cost(const TrialSpec& spec, const TrialContext& context) {
    const auto layers = static_cast<std::size_t>(spec.params.at("layers").as_int());
    DeploymentConfig config;
    config.dim = context.smoke ? 1024 : 10000;
    config.n_features = context.smoke ? 128 : 784;
    config.n_levels = 16;
    config.n_layers = layers;
    config.seed = context.seed;

    util::WallTimer timer;
    const Deployment deployment = provision(config);
    const double materialize_ms = timer.elapsed_ms();

    const std::vector<int> levels(config.n_features, 1);
    constexpr int kRepeats = 20;
    bool dims_ok = true;
    timer.reset();
    for (int r = 0; r < kRepeats; ++r) {
        const auto encoded = deployment.encoder->encode(levels);
        dims_ok = dims_ok && encoded.dim() == config.dim;
    }
    const double encode_us = timer.elapsed_ms() * 1000.0 / kRepeats;

    Json metrics = Json::object();
    metrics["dim"] = config.dim;
    metrics["n_features"] = config.n_features;
    metrics["encode_dims_ok"] = dims_ok;
    metrics["timing"]["materialize_ms"] = materialize_ms;
    metrics["timing"]["encode_us_per_sample"] = encode_us;
    return metrics;
}

Json run_fig9_trial(const TrialSpec& spec, const TrialContext& context) {
    const std::string& kind = spec.params.at("kind").as_string();
    if (kind == "relative-curves") return relative_curves();
    if (kind == "cycle-breakdown") return cycle_breakdown();
    return software_cost(spec, context);
}

std::vector<TrialSpec> plan_fig9(const RunOptions& options) {
    std::vector<TrialSpec> plan;
    for (const char* kind : {"relative-curves", "cycle-breakdown"}) {
        TrialSpec trial;
        trial.name = kind;
        trial.params["kind"] = kind;
        plan.push_back(std::move(trial));
    }
    const std::size_t max_layers = options.smoke ? 3 : kMaxLayers;
    for (std::size_t layers = 1; layers <= max_layers; ++layers) {
        TrialSpec trial;
        trial.name = "software-cost-L" + std::to_string(layers);
        trial.params["kind"] = "software-cost";
        trial.params["layers"] = layers;
        plan.push_back(std::move(trial));
    }
    return plan;
}

}  // namespace

void register_fig9(ScenarioRegistry& registry) {
    ScenarioInfo info;
    info.name = "fig9";
    info.paper_ref = "Fig. 9";
    info.description =
        "relative encoding time vs. key layers on the datapath cycle model + software cross-check";
    registry.add(std::make_shared<SimpleScenario>(std::move(info), plan_fig9, run_fig9_trial));
}

}  // namespace hdlock::eval::scenarios
