/// \file scenario_rotation.cpp
/// "key-rotation" — the robustness scenario for epoch-versioned rotation:
/// an Owner rotates its key (rekey + retrain + epoch bump) while a
/// ShardRouter fleet keeps serving, and the swap rolls through
/// ShardRouter::swap_all mid-load.
///
///   pre      closed-loop wave against the old epoch: every response Ok,
///            stamped with the pre-rotation epoch, labels bit-identical to
///            the old-epoch reference session.
///   during   an open-loop wave is in flight when swap_all installs the new
///            epoch.  Every future resolves; every Ok response carries one
///            of the two epochs active while it was in flight, and its
///            labels are bit-identical to *that* epoch's reference — never
///            a torn mix of old encoder and new model.
///   post     closed-loop wave: everything serves on the new epoch.
///   refusal  a snapshot that cannot serve this fleet (wrong feature count)
///            is offered to swap_all: it must throw RotationError and the
///            fleet must keep serving the installed epoch undisturbed.
///
/// Determinism: epoch-consistency and bit-identity checks are deterministic
/// and live as top-level metrics.  Rotation cost and the queue-delay
/// disturbance the swap causes (the "zero-downtime" claim, p50/p99 before
/// vs. during) are wall-clock and sit under the reserved "timing" key.
///
/// No fault-injection failpoints are armed here: the registry is process
/// global and eval trials run concurrently (SweepRunner); the refusal leg
/// uses a deterministically invalid snapshot instead.  The failpoint
/// matrix is covered by the unit/integration suites.

#include <algorithm>
#include <cmath>
#include <future>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "data/synthetic.hpp"
#include "eval/registry.hpp"
#include "eval/scenarios/scenarios.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace hdlock::eval::scenarios {

namespace {

double percentile(std::vector<double> values, double p) {
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    const double rank = p * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] + (values[hi] - values[lo]) * frac;
}

/// Rows [begin, begin + n) of the test pool as one request batch.
util::Matrix<float> slice_rows(const data::Dataset& pool, std::size_t begin, std::size_t n) {
    util::Matrix<float> rows(n, pool.X.cols());
    for (std::size_t r = 0; r < n; ++r) {
        const auto source = pool.X.row((begin + r) % pool.X.rows());
        std::copy(source.begin(), source.end(), rows.row(r).begin());
    }
    return rows;
}

Json run_rotation_trial(const TrialSpec& spec, const TrialContext& context) {
    const auto shards = static_cast<std::size_t>(spec.params.at("shards").as_int());

    auto data_spec = data::pamap_like();
    data_spec.n_train = context.smoke ? 240 : 400;
    data_spec.n_test = context.smoke ? 128 : 512;
    auto benchmark = data::make_benchmark(data_spec);
    const data::Dataset& pool = benchmark.test;

    DeploymentConfig config;
    config.dim = context.smoke ? 512 : 2048;
    config.n_features = benchmark.train.n_features();
    config.n_levels = benchmark.spec.n_levels;
    config.n_layers = 2;
    config.seed = context.seed;
    api::Owner owner = api::Owner::provision(config);
    api::TrainOptions train;
    train.seed = util::hash_mix(context.seed, 0x9e1d);
    owner.train(benchmark.train, train);

    api::RouterOptions options;
    options.n_shards = shards;
    options.session.max_batch = 64;
    // Deep queues + a far watermark: this scenario measures the swap's
    // latency disturbance, not admission control (router-slo covers that),
    // so nothing in flight should shed.
    options.session.max_queue_rows = 1 << 16;
    options.shed_watermark_rows = 1 << 20;
    const api::ShardRouter router = owner.open_router(options);
    const std::uint64_t epoch_before = owner.epoch();

    // Epoch references: an immutable session per generation.  The old
    // session keeps serving the old encoder even after the owner rotates —
    // exactly the property in-flight requests rely on.
    const api::InferenceSession session_before = owner.open_session();
    const std::vector<int> expected_before = session_before.predict(pool.X);

    const std::size_t rows_per_request = 8;
    const auto labels_match = [&](std::size_t begin, const std::vector<int>& labels,
                                  const std::vector<int>& expected) {
        for (std::size_t r = 0; r < labels.size(); ++r) {
            if (labels[r] != expected[(begin + r) % pool.X.rows()]) return false;
        }
        return true;
    };

    Json metrics = Json::object();
    metrics["shards"] = shards;
    metrics["rows_per_request"] = rows_per_request;
    metrics["epoch_before"] = epoch_before;

    // -- pre: closed loop on the old epoch.
    const std::size_t n_pre = context.smoke ? 30 : 120;
    std::size_t pre_ok = 0;
    std::size_t pre_consistent = 0;
    std::vector<double> pre_queue_us;
    for (std::size_t i = 0; i < n_pre; ++i) {
        const std::size_t begin = i * rows_per_request;
        api::Request request;
        request.rows = slice_rows(pool, begin, rows_per_request);
        api::Response response = router.submit(std::move(request)).get();
        if (response.ok()) {
            ++pre_ok;
            if (response.epoch == epoch_before &&
                labels_match(begin, response.labels, expected_before)) {
                ++pre_consistent;
            }
            pre_queue_us.push_back(static_cast<double>(response.queue_time.count()) / 1e3);
        }
    }
    metrics["n_pre"] = n_pre;
    metrics["pre_ok_fraction"] = static_cast<double>(pre_ok) / static_cast<double>(n_pre);
    metrics["pre_epoch_consistent"] =
        pre_ok == 0 ? 0.0 : static_cast<double>(pre_consistent) / static_cast<double>(pre_ok);

    // -- rotate the owner: rekey + retrain + epoch bump.  The router is
    //    untouched until swap_all below — that is the zero-downtime window.
    util::WallTimer rotation_timer;
    api::RotateOptions rotate;
    rotate.seed = util::hash_mix(context.seed, 0x5eed);
    rotate.train.seed = train.seed;
    const api::RotationReport report = owner.rotate(benchmark.train, rotate);
    const double rotation_seconds = rotation_timer.elapsed_seconds();
    const std::uint64_t epoch_after = report.epoch;
    metrics["epoch_after"] = epoch_after;
    metrics["epoch_delta_is_one"] = epoch_after == epoch_before + 1 ? 1.0 : 0.0;

    const api::InferenceSession session_after = owner.open_session();
    const std::vector<int> expected_after = session_after.predict(pool.X);
    const api::BundleSnapshot snapshot = owner.to_device_bundle().make_snapshot();

    // -- during: fire a wave open loop, swap mid-wave, fire a second wave,
    //    harvest everything.  Every future must resolve; every Ok response
    //    must be internally consistent with the single epoch that served it.
    const std::size_t n_wave = context.smoke ? 60 : 400;
    std::vector<std::future<api::Response>> inflight;
    std::vector<std::size_t> begins;
    inflight.reserve(2 * n_wave);
    begins.reserve(2 * n_wave);
    const auto fire_wave = [&]() {
        for (std::size_t i = 0; i < n_wave; ++i) {
            const std::size_t begin = begins.size() * rows_per_request;
            api::Request request;
            request.rows = slice_rows(pool, begin, rows_per_request);
            begins.push_back(begin);
            inflight.push_back(router.submit(std::move(request)));
        }
    };
    fire_wave();
    util::WallTimer swap_timer;
    const std::uint64_t installed = router.swap_all(snapshot);
    const double swap_seconds = swap_timer.elapsed_seconds();
    fire_wave();

    std::size_t during_resolved = 0;
    std::size_t during_ok = 0;
    std::size_t during_consistent = 0;
    std::size_t during_old_epoch = 0;
    std::size_t during_new_epoch = 0;
    std::vector<double> during_queue_us;
    for (std::size_t i = 0; i < inflight.size(); ++i) {
        api::Response response = inflight[i].get();
        ++during_resolved;
        if (!response.ok()) continue;
        ++during_ok;
        if (response.epoch == epoch_before) {
            ++during_old_epoch;
            if (labels_match(begins[i], response.labels, expected_before)) ++during_consistent;
        } else if (response.epoch == epoch_after) {
            ++during_new_epoch;
            if (labels_match(begins[i], response.labels, expected_after)) ++during_consistent;
        }
        during_queue_us.push_back(static_cast<double>(response.queue_time.count()) / 1e3);
    }
    metrics["swap_installed_epoch"] = installed;
    metrics["n_during"] = 2 * n_wave;
    metrics["during_all_responded"] =
        static_cast<double>(during_resolved) / static_cast<double>(2 * n_wave);
    metrics["during_all_ok"] = static_cast<double>(during_ok) / static_cast<double>(2 * n_wave);
    // Each Ok response must carry one of the two active epochs AND labels
    // bit-identical to that epoch's reference — the no-torn-serving claim.
    metrics["during_epoch_consistent"] =
        during_ok == 0 ? 0.0
                       : static_cast<double>(during_consistent) / static_cast<double>(during_ok);

    // -- post: closed loop, everything on the new epoch now.
    const std::size_t n_post = context.smoke ? 30 : 120;
    std::size_t post_ok = 0;
    std::size_t post_consistent = 0;
    std::vector<double> post_queue_us;
    for (std::size_t i = 0; i < n_post; ++i) {
        const std::size_t begin = i * rows_per_request;
        api::Request request;
        request.rows = slice_rows(pool, begin, rows_per_request);
        api::Response response = router.submit(std::move(request)).get();
        if (response.ok()) {
            ++post_ok;
            if (response.epoch == epoch_after &&
                labels_match(begin, response.labels, expected_after)) {
                ++post_consistent;
            }
            post_queue_us.push_back(static_cast<double>(response.queue_time.count()) / 1e3);
        }
    }
    metrics["n_post"] = n_post;
    metrics["post_ok_fraction"] = static_cast<double>(post_ok) / static_cast<double>(n_post);
    metrics["post_epoch_consistent"] =
        post_ok == 0 ? 0.0 : static_cast<double>(post_consistent) / static_cast<double>(post_ok);

    // -- refusal: a snapshot this fleet cannot serve (one feature too many)
    //    must be rejected as a typed RotationError, and the fleet must keep
    //    serving the installed epoch as if nothing happened.
    DeploymentConfig wrong = config;
    wrong.n_features = config.n_features + 1;
    wrong.seed = util::hash_mix(context.seed, 0xbad);
    api::Owner mismatched = api::Owner::provision(wrong);
    data_spec.n_features = wrong.n_features;
    auto wrong_benchmark = data::make_benchmark(data_spec);
    mismatched.train(wrong_benchmark.train, train);
    double swap_refused = 0.0;
    try {
        router.swap_all(mismatched.to_device_bundle().make_snapshot());
    } catch (const RotationError&) {
        swap_refused = 1.0;
    }
    metrics["bad_swap_refused"] = swap_refused;
    std::size_t refusal_consistent = 0;
    const std::size_t n_refusal = 10;
    for (std::size_t i = 0; i < n_refusal; ++i) {
        const std::size_t begin = i * rows_per_request;
        api::Request request;
        request.rows = slice_rows(pool, begin, rows_per_request);
        api::Response response = router.submit(std::move(request)).get();
        if (response.ok() && response.epoch == epoch_after &&
            labels_match(begin, response.labels, expected_after)) {
            ++refusal_consistent;
        }
    }
    metrics["serving_survives_refused_swap"] =
        static_cast<double>(refusal_consistent) / static_cast<double>(n_refusal);

    // Wall-clock: what the rotation cost and how much the swap disturbed
    // tail latency.  The bound is deliberately loose (CI machines are
    // noisy); the jq gate checks the flag, dashboards read the raw values.
    const double during_p99_us = percentile(during_queue_us, 0.99);
    metrics["timing"]["rotation_ms"] = rotation_seconds * 1e3;
    metrics["timing"]["swap_ms"] = swap_seconds * 1e3;
    metrics["timing"]["pre_queue_p50_us"] = percentile(pre_queue_us, 0.50);
    metrics["timing"]["pre_queue_p99_us"] = percentile(pre_queue_us, 0.99);
    metrics["timing"]["during_queue_p50_us"] = percentile(during_queue_us, 0.50);
    metrics["timing"]["during_queue_p99_us"] = during_p99_us;
    metrics["timing"]["post_queue_p50_us"] = percentile(post_queue_us, 0.50);
    metrics["timing"]["post_queue_p99_us"] = percentile(post_queue_us, 0.99);
    metrics["timing"]["during_p99_bounded"] = during_p99_us < 2e6 ? 1.0 : 0.0;
    metrics["timing"]["during_old_epoch"] = during_old_epoch;
    metrics["timing"]["during_new_epoch"] = during_new_epoch;
    return metrics;
}

std::vector<TrialSpec> plan_rotation(const RunOptions& options) {
    const std::vector<std::size_t> shard_counts =
        options.smoke ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4};
    std::vector<TrialSpec> plan;
    for (const std::size_t shards : shard_counts) {
        TrialSpec trial;
        // Appends instead of operator+ chains: GCC 12's -Wrestrict
        // false-positives on `const char* + std::string&&` at -O2+.
        trial.name = "S";
        trial.name += std::to_string(shards);
        trial.name += "-rotate";
        trial.params["shards"] = shards;
        plan.push_back(std::move(trial));
    }
    return plan;
}

}  // namespace

void register_rotation(ScenarioRegistry& registry) {
    ScenarioInfo info;
    info.name = "key-rotation";
    info.paper_ref = "beyond-paper";
    info.description =
        "epoch-versioned key rotation under load: RCU bundle hot swap keeps every in-flight "
        "response consistent with exactly one epoch, and a refused swap leaves serving intact";
    registry.add(
        std::make_shared<SimpleScenario>(std::move(info), plan_rotation, run_rotation_trial));
}

}  // namespace hdlock::eval::scenarios
