/// \file scenario_fig8.cpp
/// Scenario "fig8" — Fig. 8: inference accuracy vs. number of key layers L,
/// five benchmarks x {non-binary, binary} record encoding.  The paper's
/// claim: HDLock costs no accuracy at any L (Eq. 9 products of orthogonal
/// bases are themselves orthogonal), so every accuracy curve is flat up to
/// seed noise.  One trial per (benchmark, kind) — ten independent model
/// trainings that fan out across workers; each trial sweeps L internally
/// and trains through the batch encode path (hdc::HdcClassifier).
///
/// Default D = 4,096 (the flatness claim is dimension-independent); --full
/// runs the paper's 10,000; --smoke bounds D, L, and the dataset sizes.

#include <cmath>
#include <memory>

#include "core/locked_encoder.hpp"
#include "data/synthetic.hpp"
#include "eval/registry.hpp"
#include "eval/scenarios/paper_presets.hpp"
#include "eval/scenarios/scenarios.hpp"
#include "hdc/classifier.hpp"

namespace hdlock::eval::scenarios {

namespace {

double locked_accuracy(const data::SyntheticBenchmark& benchmark, hdc::ModelKind kind,
                       std::size_t dim, std::size_t n_layers, std::uint64_t seed) {
    DeploymentConfig config;
    config.dim = dim;
    config.n_features = benchmark.train.n_features();
    config.n_levels = benchmark.spec.n_levels;
    config.n_layers = n_layers;
    config.seed = seed;
    const Deployment deployment = provision(config);

    hdc::PipelineConfig pipeline;
    pipeline.train.kind = kind;
    pipeline.train.retrain_epochs = 10;
    pipeline.train.seed = util::hash_mix(seed, n_layers);
    const auto classifier = hdc::HdcClassifier::fit(benchmark.train, deployment.encoder, pipeline);
    return classifier.evaluate(benchmark.test);
}

Json run_fig8_trial(const TrialSpec& spec, const TrialContext& context) {
    const std::size_t dim = context.full ? 10000 : (context.smoke ? 1024 : 4096);
    const std::size_t max_layers = context.smoke ? 2 : 5;

    // The preset's own seed is kept so the binary and non-binary trials see
    // the same data; only the deployment/training seeds are per-trial.
    const auto benchmark = data::make_benchmark(smoke_scaled(
        paper_spec_by_name(spec.params.at("benchmark").as_string()), context.smoke));
    const auto kind = kind_from_params(spec);

    Json metrics = Json::object();
    metrics["dim"] = dim;
    Json rows = Json::array();
    double baseline = 0.0;
    double max_drift = 0.0;
    for (std::size_t layers = 0; layers <= max_layers; ++layers) {
        const double accuracy = locked_accuracy(benchmark, kind, dim, layers, context.seed);
        if (layers == 0) baseline = accuracy;
        max_drift = std::max(max_drift, std::abs(accuracy - baseline));
        Json row = Json::object();
        row["layers"] = layers;
        row["accuracy"] = accuracy;
        rows.push_back(std::move(row));
    }
    metrics["baseline_accuracy"] = baseline;
    metrics["max_drift"] = max_drift;
    metrics["series"]["accuracy_vs_layers"] = std::move(rows);
    return metrics;
}

}  // namespace

void register_fig8(ScenarioRegistry& registry) {
    ScenarioInfo info;
    info.name = "fig8";
    info.paper_ref = "Fig. 8";
    info.description =
        "accuracy vs. key layers L, five benchmarks x two model kinds (flat curves expected)";
    registry.add(std::make_shared<SimpleScenario>(
        std::move(info), [](const RunOptions&) { return plan_benchmark_kind_trials(); },
        run_fig8_trial));
}

}  // namespace hdlock::eval::scenarios
