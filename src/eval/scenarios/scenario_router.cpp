/// \file scenario_router.cpp
/// "router-slo" — the serving-tier scenario: a ShardRouter fleet under
/// three load regimes, swept over shard count x placement policy.
///
///   closed-loop   one caller awaiting each typed request: every response
///                 must be Ok and bit-identical to a reference single
///                 session (sharding never changes labels).
///   open-loop     requests fired without awaiting against a small shed
///                 watermark: admission control engages, every future still
///                 resolves, Ok responses stay bit-identical, and queue
///                 delay stays bounded (the point of shedding).
///   expired       requests submitted with an already-spent deadline
///                 resolve deadline_exceeded without touching a queue.
///
/// Determinism: the closed-loop/expired outcomes and every bit-identity
/// check are deterministic and live as top-level metrics; anything load- or
/// wall-clock-dependent (shed counts, queue-time percentiles, achieved
/// rates, the adaptive governor's settled delay) sits under the reserved
/// "timing" key that deterministic dumps strip.

#include <algorithm>
#include <cmath>
#include <future>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "data/synthetic.hpp"
#include "eval/registry.hpp"
#include "eval/scenarios/scenarios.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace hdlock::eval::scenarios {

namespace {

double percentile(std::vector<double> values, double p) {
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    const double rank = p * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] + (values[hi] - values[lo]) * frac;
}

struct Fleet {
    api::ShardRouter router;
    api::InferenceSession reference;
    api::InferenceSession unfused;
    data::SyntheticBenchmark benchmark;
};

Fleet build_fleet(std::size_t shards, api::Placement placement, const TrialContext& context) {
    auto spec = data::pamap_like();
    spec.n_train = context.smoke ? 240 : 400;
    spec.n_test = context.smoke ? 128 : 512;
    auto benchmark = data::make_benchmark(spec);

    DeploymentConfig config;
    config.dim = context.smoke ? 512 : 2048;
    config.n_features = benchmark.train.n_features();
    config.n_levels = benchmark.spec.n_levels;
    config.n_layers = 2;
    config.seed = context.seed;
    api::Owner owner = api::Owner::provision(config);
    api::TrainOptions train;
    train.seed = util::hash_mix(context.seed, 0x9e1d);
    owner.train(benchmark.train, train);

    api::RouterOptions options;
    options.n_shards = shards;
    options.placement = placement;
    options.session.max_batch = 64;
    options.session.max_queue_rows = 64;
    // A reachable watermark so the open-loop phase actually sheds.
    options.shed_watermark_rows = shards * 48;
    api::ShardRouter router = owner.open_router(options);
    api::InferenceSession reference = owner.open_session();
    // The A/B twin of the reference: fused encode→distance forced off, so
    // the trial can assert the fused path (active by default on binary
    // models) changes no label.
    api::SessionOptions unfused_options;
    unfused_options.fused_predict = api::FusedPredict::off;
    api::InferenceSession unfused = owner.open_session(unfused_options);
    return Fleet{std::move(router), std::move(reference), std::move(unfused),
                 std::move(benchmark)};
}

/// Rows [begin, begin + n) of the test pool as one request batch.
util::Matrix<float> slice_rows(const data::Dataset& pool, std::size_t begin, std::size_t n) {
    util::Matrix<float> rows(n, pool.X.cols());
    for (std::size_t r = 0; r < n; ++r) {
        const auto source = pool.X.row((begin + r) % pool.X.rows());
        std::copy(source.begin(), source.end(), rows.row(r).begin());
    }
    return rows;
}

Json run_router_trial(const TrialSpec& spec, const TrialContext& context) {
    const auto shards = static_cast<std::size_t>(spec.params.at("shards").as_int());
    const auto placement = api::parse_placement(spec.params.at("placement").as_string());
    Fleet fleet = build_fleet(shards, *placement, context);
    const data::Dataset& pool = fleet.benchmark.test;
    const std::vector<int> expected = fleet.reference.predict(pool.X);
    const std::size_t rows_per_request = 8;

    const auto labels_match = [&](std::size_t begin, const std::vector<int>& labels) {
        for (std::size_t r = 0; r < labels.size(); ++r) {
            if (labels[r] != expected[(begin + r) % pool.X.rows()]) return false;
        }
        return true;
    };

    Json metrics = Json::object();
    metrics["rows_per_request"] = rows_per_request;

    // -- closed loop: await each request; everything must serve Ok and
    //    match the reference labels bit-for-bit.
    const std::size_t n_closed = context.smoke ? 40 : 200;
    std::size_t closed_ok = 0;
    std::size_t closed_identical = 0;
    std::vector<double> closed_queue_us;
    util::WallTimer closed_timer;
    for (std::size_t i = 0; i < n_closed; ++i) {
        const std::size_t begin = i * rows_per_request;
        api::Request request;
        request.rows = slice_rows(pool, begin, rows_per_request);
        if (*placement == api::Placement::consistent_hash) request.shard_key = i % 16;
        api::Response response = fleet.router.submit(std::move(request)).get();
        if (response.ok()) {
            ++closed_ok;
            if (labels_match(begin, response.labels)) ++closed_identical;
            closed_queue_us.push_back(
                static_cast<double>(response.queue_time.count()) / 1e3);
        }
    }
    const double closed_seconds = closed_timer.elapsed_seconds();
    metrics["n_closed"] = n_closed;
    metrics["closed_ok_fraction"] =
        static_cast<double>(closed_ok) / static_cast<double>(n_closed);
    metrics["bit_identical"] = closed_ok == 0
                                   ? 0.0
                                   : static_cast<double>(closed_identical) /
                                         static_cast<double>(closed_ok);

    // -- open loop: fire everything, harvest afterwards.  The watermark is
    //    reachable, so shedding engages; what must hold deterministically
    //    is that every future resolves and Ok labels stay reference-equal.
    const std::size_t n_open = context.smoke ? 300 : 2000;
    std::vector<std::future<api::Response>> inflight;
    std::vector<std::size_t> begins;
    inflight.reserve(n_open);
    begins.reserve(n_open);
    util::WallTimer open_timer;
    for (std::size_t i = 0; i < n_open; ++i) {
        const std::size_t begin = i * rows_per_request;
        api::Request request;
        request.rows = slice_rows(pool, begin, rows_per_request);
        if (*placement == api::Placement::consistent_hash) request.shard_key = i % 16;
        begins.push_back(begin);
        inflight.push_back(fleet.router.submit(std::move(request)));
    }
    const double submit_seconds = open_timer.elapsed_seconds();
    std::size_t open_ok = 0;
    std::size_t open_shed = 0;
    std::size_t open_identical = 0;
    std::size_t open_resolved = 0;
    std::vector<double> open_queue_us;
    for (std::size_t i = 0; i < inflight.size(); ++i) {
        api::Response response = inflight[i].get();
        ++open_resolved;
        switch (response.status) {
            case api::Status::ok:
                ++open_ok;
                if (labels_match(begins[i], response.labels)) ++open_identical;
                open_queue_us.push_back(
                    static_cast<double>(response.queue_time.count()) / 1e3);
                break;
            case api::Status::overloaded:
                ++open_shed;
                break;
            default:
                break;
        }
    }
    const double open_seconds = open_timer.elapsed_seconds();
    metrics["n_open"] = n_open;
    metrics["open_all_responded"] =
        static_cast<double>(open_resolved) / static_cast<double>(n_open);
    metrics["open_accounted"] = open_ok + open_shed == n_open ? 1.0 : 0.0;
    metrics["open_bit_identical"] =
        open_ok == 0 ? 1.0
                     : static_cast<double>(open_identical) / static_cast<double>(open_ok);

    // -- expired deadlines: a spent budget resolves deadline_exceeded at
    //    submit, deterministically, without consuming queue capacity.
    const std::size_t n_expired = 20;
    std::size_t expired_hits = 0;
    for (std::size_t i = 0; i < n_expired; ++i) {
        api::Request request;
        request.rows = slice_rows(pool, i, rows_per_request);
        request.deadline = util::Deadline::after(std::chrono::nanoseconds{0});
        if (fleet.router.submit(std::move(request)).get().status ==
            api::Status::deadline_exceeded) {
            ++expired_hits;
        }
    }
    metrics["n_expired"] = n_expired;
    metrics["expired_deadline_fraction"] =
        static_cast<double>(expired_hits) / static_cast<double>(n_expired);

    // -- fused vs two-step predict: the reference session serves binary
    //    rows through the fused encode→distance kernel path; its unfused
    //    twin runs the two-step encode + Hamming argmin.  Labels must match
    //    bit-for-bit over the whole pool (deterministic on every backend).
    metrics["fused_active"] = fleet.reference.fused_predict_active() ? 1.0 : 0.0;
    metrics["fused_bit_identical"] = fleet.unfused.predict(pool.X) == expected ? 1.0 : 0.0;

    const api::RouterStats stats = fleet.router.stats();
    metrics["timing"]["closed_rps"] =
        closed_seconds > 0.0 ? static_cast<double>(n_closed) / closed_seconds : 0.0;
    metrics["timing"]["closed_queue_p50_us"] = percentile(closed_queue_us, 0.50);
    metrics["timing"]["closed_queue_p99_us"] = percentile(closed_queue_us, 0.99);
    metrics["timing"]["open_offered_rps"] =
        submit_seconds > 0.0 ? static_cast<double>(n_open) / submit_seconds : 0.0;
    metrics["timing"]["open_seconds"] = open_seconds;
    metrics["timing"]["open_ok"] = open_ok;
    metrics["timing"]["open_shed"] = open_shed;
    metrics["timing"]["open_shed_fraction"] =
        static_cast<double>(open_shed) / static_cast<double>(n_open);
    metrics["timing"]["open_queue_p50_us"] = percentile(open_queue_us, 0.50);
    metrics["timing"]["open_queue_p99_us"] = percentile(open_queue_us, 0.99);
    metrics["timing"]["router_accepted"] = stats.accepted;
    metrics["timing"]["router_shed"] = stats.shed;
    metrics["timing"]["adaptive_delay_us_shard0"] =
        static_cast<double>(fleet.router.shard(0).current_queue_delay().count());
    return metrics;
}

std::vector<TrialSpec> plan_router(const RunOptions& options) {
    const std::vector<std::size_t> shard_counts =
        options.smoke ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4, 8};
    std::vector<TrialSpec> plan;
    for (const std::size_t shards : shard_counts) {
        for (const api::Placement placement :
             {api::Placement::round_robin, api::Placement::least_loaded,
              api::Placement::consistent_hash}) {
            TrialSpec trial;
            // Appends instead of operator+ chains: GCC 12's -Wrestrict
            // false-positives on `const char* + std::string&&` at -O2+.
            trial.name = "S";
            trial.name += std::to_string(shards);
            trial.name += "-";
            trial.name += api::placement_name(placement);
            trial.params["shards"] = shards;
            trial.params["placement"] = api::placement_name(placement);
            plan.push_back(std::move(trial));
        }
    }
    return plan;
}

}  // namespace

void register_router(ScenarioRegistry& registry) {
    ScenarioInfo info;
    info.name = "router-slo";
    info.paper_ref = "beyond-paper";
    info.description =
        "shard-router fleet under closed/open-loop load: shedding engages, labels stay "
        "bit-identical at any shard count and placement";
    registry.add(
        std::make_shared<SimpleScenario>(std::move(info), plan_router, run_router_trial));
}

}  // namespace hdlock::eval::scenarios
