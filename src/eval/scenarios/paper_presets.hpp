#pragma once

/// \file paper_presets.hpp
/// Helpers shared by the scenarios that sweep the paper's five synthetic
/// benchmark stand-ins x {non-binary, binary} model kinds (Fig. 8,
/// Table 1): preset lookup, the common smoke-mode dataset bound, and the
/// benchmark-x-kind trial grid.  One definition so the preset list and the
/// smoke budget cannot drift between scenarios.

#include <string>
#include <vector>

#include "data/synthetic.hpp"
#include "eval/scenario.hpp"
#include "hdc/model.hpp"
#include "util/error.hpp"

namespace hdlock::eval::scenarios {

/// Preset lookup by Table 1 name; throws Error naming the unknown preset.
inline data::SyntheticSpec paper_spec_by_name(const std::string& name) {
    for (const auto& spec : data::paper_benchmarks()) {
        if (spec.name == name) return spec;
    }
    throw Error("unknown benchmark preset '" + name + "'");
}

/// The shared smoke-mode dataset bound (part of the uniform --smoke
/// semantics: bounded dims AND bounded sizes everywhere).
inline data::SyntheticSpec smoke_scaled(data::SyntheticSpec spec, bool smoke) {
    if (smoke) {
        spec.n_train = std::min<std::size_t>(spec.n_train, 400);
        spec.n_test = std::min<std::size_t>(spec.n_test, 150);
    }
    return spec;
}

/// The ten-trial grid of Fig. 8 / Table 1: five benchmarks x
/// {nonbinary, binary}, params {"benchmark", "kind"}.
inline std::vector<TrialSpec> plan_benchmark_kind_trials() {
    std::vector<TrialSpec> plan;
    for (const char* kind : {"nonbinary", "binary"}) {
        for (const auto& spec : data::paper_benchmarks()) {
            TrialSpec trial;
            trial.name = spec.name + "/" + kind;
            trial.params["benchmark"] = spec.name;
            trial.params["kind"] = kind;
            plan.push_back(std::move(trial));
        }
    }
    return plan;
}

/// Decodes the "kind" param of a plan_benchmark_kind_trials() trial.
inline hdc::ModelKind kind_from_params(const TrialSpec& spec) {
    return spec.params.at("kind").as_string() == "binary" ? hdc::ModelKind::binary
                                                          : hdc::ModelKind::non_binary;
}

}  // namespace hdlock::eval::scenarios
