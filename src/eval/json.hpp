#pragma once

/// \file json.hpp
/// Minimal JSON value model + writer for the eval:: reproduction reports.
///
/// Deliberately tiny — the harness only ever *writes* JSON — but strict
/// about determinism, which third-party writers tend not to be:
///
///  - objects preserve insertion order (no re-sorting, no hash order), so a
///    report serializes byte-identically across runs and thread counts;
///  - numbers are rendered with std::to_chars shortest round-trip form, the
///    same bytes on every standard library;
///  - non-finite doubles serialize as null (JSON has no NaN/inf) instead of
///    producing an unparseable file.
///
/// The output schema convention lives in report.hpp; this file is plain
/// value plumbing.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace hdlock::eval {

class Json {
public:
    using Array = std::vector<Json>;
    using Object = std::vector<std::pair<std::string, Json>>;

    enum class Kind { null, boolean, integer, number, string, array, object };

    Json() noexcept : value_(nullptr) {}
    Json(std::nullptr_t) noexcept : value_(nullptr) {}
    Json(bool value) noexcept : value_(value) {}
    Json(double value) noexcept : value_(value) {}
    Json(const char* value) : value_(std::string(value)) {}
    Json(std::string value) : value_(std::move(value)) {}
    Json(std::string_view value) : value_(std::string(value)) {}
    Json(Array value) : value_(std::move(value)) {}
    Json(Object value) : value_(std::move(value)) {}

    /// Every integral value stores and serializes exactly: signed and small
    /// unsigned as int64, unsigned values above int64 max as uint64.  This
    /// matters for the per-trial seeds in reports — hash_mix output is
    /// uniform over uint64, and a seed rounded through double would not
    /// reproduce the trial it claims to describe.
    template <typename T>
        requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
    Json(T value) noexcept {
        if constexpr (std::is_unsigned_v<T>) {
            if (static_cast<std::uint64_t>(value) >
                static_cast<std::uint64_t>(INT64_MAX)) {
                value_ = static_cast<std::uint64_t>(value);
                return;
            }
        }
        value_ = static_cast<std::int64_t>(value);
    }

    static Json array() { return Json(Array{}); }
    static Json object() { return Json(Object{}); }

    Kind kind() const noexcept;
    bool is_null() const noexcept { return kind() == Kind::null; }
    bool is_object() const noexcept { return kind() == Kind::object; }
    bool is_array() const noexcept { return kind() == Kind::array; }

    /// Object upsert: returns the value for `key`, inserting null first if
    /// absent.  A null Json silently becomes an object (builder style).
    Json& operator[](std::string_view key);

    /// Object lookup; nullptr when absent or when this is not an object.
    const Json* find(std::string_view key) const noexcept;

    /// Object lookup that must succeed (ContractViolation otherwise) — the
    /// test-friendly accessor.
    const Json& at(std::string_view key) const;
    /// Array element access (bounds-checked).
    const Json& at(std::size_t index) const;

    /// Array append: a null Json silently becomes an array.
    void push_back(Json element);

    /// Removes an object key if present; returns whether it was there.
    bool erase(std::string_view key);

    std::size_t size() const noexcept;

    bool as_bool() const;
    /// Integer value; throws for uint64 payloads above int64 max (use
    /// as_uint for those).
    std::int64_t as_int() const;
    /// Any stored integer as uint64; throws for negatives.
    std::uint64_t as_uint() const;
    /// Exact decimal rendering of an integer payload (the writer's path —
    /// signed or unsigned, never through double).
    std::string integer_to_string() const;
    double as_double() const;  ///< integer or number
    const std::string& as_string() const;
    const Array& as_array() const;
    const Object& as_object() const;

    /// Serializes the value.  indent < 0: compact one-line form; indent >= 0:
    /// pretty-printed with that many spaces per level (the bench/results/
    /// files use 2).
    std::string dump(int indent = -1) const;

    bool operator==(const Json& other) const noexcept = default;

private:
    // std::uint64_t holds only values above int64 max (see the integral
    // constructor); both integral alternatives present as Kind::integer.
    std::variant<std::nullptr_t, bool, std::int64_t, std::uint64_t, double, std::string, Array,
                 Object>
        value_;
};

/// Escapes and quotes a string per RFC 8259 (control characters as \u00XX).
std::string json_quote(std::string_view text);

/// Shortest round-trip decimal rendering of a double ("0.005", "1e+30");
/// "null" for non-finite values.
std::string json_number(double value);

}  // namespace hdlock::eval
