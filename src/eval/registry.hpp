#pragma once

/// \file registry.hpp
/// Name -> Scenario lookup for the reproduction harness.
///
/// Every paper figure/table and every beyond-paper sweep registers exactly
/// once, by name, in registration order (the paper's order, then the
/// extensions).  builtin_registry() is the process-wide read-only instance
/// the CLIs use; make_builtin_registry() builds a fresh one for tests.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "eval/scenario.hpp"

namespace hdlock::eval {

class ScenarioRegistry {
public:
    /// Registers a scenario; throws ConfigError on an empty or duplicate
    /// name.
    void add(std::shared_ptr<const Scenario> scenario);

    bool contains(std::string_view name) const noexcept;

    /// Lookup that throws Error naming the unknown scenario AND listing
    /// every available name — a typo in --scenario must never fail mutely.
    const Scenario& at(std::string_view name) const;

    /// All scenarios in registration order.
    std::vector<const Scenario*> scenarios() const;

    /// All names in registration order.
    std::vector<std::string> names() const;

    std::size_t size() const noexcept { return scenarios_.size(); }

private:
    std::vector<std::shared_ptr<const Scenario>> scenarios_;
};

/// Builds a registry holding every built-in scenario: the six figures,
/// Table 1, and the beyond-paper sweeps.
ScenarioRegistry make_builtin_registry();

/// Lazily-constructed shared instance of make_builtin_registry().
const ScenarioRegistry& builtin_registry();

}  // namespace hdlock::eval
