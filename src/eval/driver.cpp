#include "eval/driver.hpp"

#include <fstream>
#include <ostream>

#include "eval/render.hpp"
#include "eval/report.hpp"
#include "eval/sweep_runner.hpp"
#include "util/error.hpp"
#include "util/kernels.hpp"
#include "util/table.hpp"

namespace hdlock::eval {

namespace {

int list_scenarios(const ScenarioRegistry& registry, std::ostream& out) {
    util::TextTable table({"scenario", "paper", "trials", "trials(smoke)", "description"});
    RunOptions default_options;
    RunOptions smoke_options;
    smoke_options.smoke = true;
    for (const Scenario* scenario : registry.scenarios()) {
        table.add_row({scenario->info().name, scenario->info().paper_ref,
                       std::to_string(scenario->plan(default_options).size()),
                       std::to_string(scenario->plan(smoke_options).size()),
                       scenario->info().description});
    }
    out << table.to_string();

    // The kernel backend roster: which backends this binary carries, which
    // the host can run, and which one dispatch picked — the fields an
    // operator needs to act on the HDLOCK_KERNEL_BACKEND warning or choose
    // a --backend value.
    util::TextTable backends({"backend", "compiled", "available", "active"});
    const auto& active = util::kernels::active();
    for (const auto kind : util::kernels::all_backends()) {
        backends.add_row({std::string(util::kernels::backend_name(kind)),
                          util::kernels::compiled(kind) ? "yes" : "no",
                          util::kernels::cpu_supports(kind) ? "yes" : "no",
                          active.kind == kind ? "yes" : ""});
    }
    out << "\nkernel backends:\n" << backends.to_string();
    return 0;
}

}  // namespace

std::vector<std::string> split_scenario_list(const std::string& value) {
    std::vector<std::string> names;
    std::size_t begin = 0;
    while (begin <= value.size()) {
        const std::size_t comma = value.find(',', begin);
        const std::size_t end = comma == std::string::npos ? value.size() : comma;
        if (end > begin) names.push_back(value.substr(begin, end - begin));
        if (comma == std::string::npos) break;
        begin = comma + 1;
    }
    return names;
}

int run_eval_cli(const EvalCliOptions& options, const ScenarioRegistry& registry,
                 std::ostream& out, std::ostream& err) {
    if (options.list) return list_scenarios(registry, out);

    if (!options.all && options.scenarios.empty()) {
        err << "nothing to do: pass --list, --all, or --scenario NAME\n";
        return 2;
    }
    if (options.run.smoke && options.run.full) {
        err << "--smoke and --full are mutually exclusive\n";
        return 2;
    }

    if (!options.backend.empty()) {
        const auto kind = util::kernels::parse_backend(options.backend);
        if (!kind) {
            err << "unknown kernel backend '" << options.backend
                << "' (expected portable, neon, avx2, or avx512; see --list for this "
                   "binary's roster)\n";
            return 2;
        }
        try {
            util::kernels::set_backend(*kind);
        } catch (const Error& error) {
            err << error.what() << "\n";
            return 2;
        }
    }

    std::vector<const Scenario*> selected;
    if (options.all) {
        selected = registry.scenarios();
    } else {
        for (const auto& name : options.scenarios) {
            try {
                selected.push_back(&registry.at(name));
            } catch (const Error& error) {
                err << error.what() << "\n";
                return 2;
            }
        }
    }

    const bool json_to_stdout = options.json && options.json_path.empty();
    const SweepRunner runner(options.run);
    std::vector<ScenarioRunReport> reports;
    reports.reserve(selected.size());
    for (const Scenario* scenario : selected) {
        ScenarioRunReport report = runner.run(*scenario);
        if (!json_to_stdout) {
            out << (options.csv ? render_csv(report) : render_text(report));
        }
        reports.push_back(std::move(report));
    }

    if (options.json) {
        ReportJsonOptions json_options;
        json_options.include_timing = options.timing;
        json_options.include_context = options.timing;
        json_options.executable = options.executable;
        const std::string payload = full_report_json(reports, json_options).dump(2) + "\n";
        if (json_to_stdout) {
            out << payload;
        } else {
            std::ofstream file(options.json_path, std::ios::binary);
            file << payload;
            file.flush();  // surface ENOSPC-style errors before the check
            if (!file) {
                err << "failed to write JSON report to " << options.json_path << "\n";
                return 1;
            }
            out << "wrote " << options.json_path << "\n";
        }
    }

    int exit_code = 0;
    for (const auto& report : reports) {
        if (report.ok()) continue;
        exit_code = 1;
        if (report.trials.empty()) {
            err << "scenario '" << report.info.name << "': empty report (no trials planned)\n";
        } else {
            for (const auto& trial : report.trials) {
                if (!trial.ok()) {
                    err << "scenario '" << report.info.name << "' trial '" << trial.spec.name
                        << "' failed: " << trial.error << "\n";
                }
            }
        }
    }
    return exit_code;
}

}  // namespace hdlock::eval
