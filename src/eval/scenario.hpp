#pragma once

/// \file scenario.hpp
/// The eval:: scenario model — one named, parameterized paper reproduction.
///
/// A Scenario is a figure/table of the paper (or a beyond-paper sweep)
/// expressed as data: plan() declares the independent trials (the points of
/// the parameter axes) for a given run mode, and run_trial() computes one of
/// them.  The SweepRunner fans the trials out across worker threads; because
/// every trial's seed is derived deterministically from (run seed, scenario
/// name, trial index) — never from thread identity or execution order — the
/// same options produce bit-identical reports at any thread count.
///
/// Metric conventions (enforced by convention, relied on by report.hpp and
/// render.hpp):
///
///  - the Json returned by run_trial() is an object of scalar metrics;
///  - curves/tables behind a figure go under the reserved key "series": an
///    object mapping series name -> array of row objects;
///  - wall-clock measurements (the only legitimately non-deterministic
///    values) go under the reserved key "timing": an object of scalars.
///    report.hpp strips "timing" when writing the canonical deterministic
///    form used for cross-thread-count comparison.
///
/// Run modes mirror the bench/ flags: smoke bounds BOTH the trial axes and
/// the per-trial problem sizes (dimensions, dataset sizes, layer counts) so
/// every scenario finishes CI-fast; full selects paper-scale parameters
/// where the default is reduced.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "eval/json.hpp"
#include "util/rng.hpp"

namespace hdlock::eval {

struct RunOptions {
    /// CI mode: bounded trial axes and bounded dims everywhere.
    bool smoke = false;
    /// Paper-scale parameters where the default is reduced (e.g. Fig. 8's
    /// D = 10,000).  Mutually exclusive with smoke.
    bool full = false;
    /// Experiment seed every trial seed is derived from.
    std::uint64_t seed = 1;
    /// Worker threads for the sweep; 0 picks the hardware concurrency.
    std::size_t n_threads = 1;
    /// Upper bound on trials actually run (0 = all planned).  A test/CI
    /// budget knob; the report records the planned count separately.
    std::size_t max_trials = 0;
};

/// Registry-facing identity of a scenario.
struct ScenarioInfo {
    std::string name;         ///< registry key, e.g. "fig3"
    std::string paper_ref;    ///< "Fig. 3", "Table 1", or "beyond-paper"
    std::string description;  ///< one-line summary for --list
};

/// One planned trial: a point on the scenario's parameter axes.
struct TrialSpec {
    std::string name;  ///< unique within the scenario, stable across runs
    Json params = Json::object();
};

/// Execution context handed to run_trial().
struct TrialContext {
    std::size_t index = 0;           ///< position in the plan
    std::uint64_t seed = 0;          ///< per-trial derived seed
    std::uint64_t scenario_seed = 0; ///< shared by all trials of the scenario
                                     ///< (for experiments that attack one
                                     ///< common deployment, Fig. 5/6 style)
    bool smoke = false;
    bool full = false;
};

class Scenario {
public:
    virtual ~Scenario() = default;

    virtual const ScenarioInfo& info() const = 0;

    /// Declares the trials for the given run mode.  Must be deterministic
    /// (a pure function of the options) and must not truncate for
    /// max_trials — the runner does that, recording the planned count.
    virtual std::vector<TrialSpec> plan(const RunOptions& options) const = 0;

    /// Computes one trial.  Runs concurrently with other trials of the same
    /// scenario, so implementations must not share mutable state.
    virtual Json run_trial(const TrialSpec& spec, const TrialContext& context) const = 0;
};

/// Function-backed Scenario, the idiom scenario registrations use.
class SimpleScenario final : public Scenario {
public:
    using PlanFn = std::function<std::vector<TrialSpec>(const RunOptions&)>;
    using TrialFn = std::function<Json(const TrialSpec&, const TrialContext&)>;

    SimpleScenario(ScenarioInfo info, PlanFn plan, TrialFn run_trial)
        : info_(std::move(info)), plan_(std::move(plan)), run_trial_(std::move(run_trial)) {}

    const ScenarioInfo& info() const override { return info_; }
    std::vector<TrialSpec> plan(const RunOptions& options) const override {
        return plan_(options);
    }
    Json run_trial(const TrialSpec& spec, const TrialContext& context) const override {
        return run_trial_(spec, context);
    }

private:
    ScenarioInfo info_;
    PlanFn plan_;
    TrialFn run_trial_;
};

/// Seed shared by every trial of `scenario_name` under `options`.
inline std::uint64_t derive_scenario_seed(const RunOptions& options,
                                          std::string_view scenario_name) {
    const std::span<const char> bytes(scenario_name.data(), scenario_name.size());
    return util::hash_mix(options.seed, util::fnv1a_of(bytes));
}

/// Per-trial seed: a pure function of (run seed, scenario name, trial
/// index), independent of thread count and execution order.
inline std::uint64_t derive_trial_seed(const RunOptions& options,
                                       std::string_view scenario_name,
                                       std::size_t trial_index) {
    return util::hash_mix(derive_scenario_seed(options, scenario_name), trial_index);
}

}  // namespace hdlock::eval
