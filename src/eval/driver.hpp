#pragma once

/// \file driver.hpp
/// The CLI contract of the reproduction harness, shared verbatim by the
/// standalone `hdlock_eval` tool and the `hdlock_cli eval` subcommand.
///
///   --list              table of registered scenarios and trial counts
///   --scenario NAMES    run the named scenario(s); comma-separated and/or
///                       repeated flags accumulate
///   --all               run every registered scenario
///   --smoke             bounded trials and bounded dims (CI mode)
///   --full              paper-scale parameters where the default is reduced
///   --seed S            experiment seed (default 1)
///   --threads N         sweep workers; 0 = hardware concurrency
///   --max-trials K      run at most K trials per scenario (test budget)
///   --json[=PATH]       JSON report to PATH, or to stdout when no PATH
///                       (text rendering is suppressed on stdout-JSON)
///   --no-timing         strip the context block and all timing fields —
///                       output is then bit-identical across thread counts
///                       and kernel backends
///   --csv               CSV tables instead of aligned text
///   --backend B         pin the SIMD kernel backend (portable|avx2|avx512)
///                       before running; unknown or unavailable values are
///                       usage errors.  Recorded in the JSON context.
///
/// Exit codes: 0 all scenarios green; 1 any scenario error or empty report
/// (the CI reproduce gate); 2 usage errors (unknown scenario, bad flags).

#include <iosfwd>
#include <string>
#include <vector>

#include "eval/registry.hpp"
#include "eval/scenario.hpp"

namespace hdlock::eval {

struct EvalCliOptions {
    bool list = false;
    bool all = false;
    std::vector<std::string> scenarios;  ///< names, already comma-split
    RunOptions run;
    bool json = false;
    std::string json_path;  ///< empty = stdout
    bool timing = true;     ///< false = deterministic form (--no-timing)
    bool csv = false;
    std::string backend;    ///< kernel backend to pin; empty = keep active
    std::string executable = "hdlock_eval";  ///< recorded in the JSON context
};

/// Runs the harness per the options against `registry`, writing renderings
/// to `out` and diagnostics to `err`.  Returns the exit code documented
/// above; throws nothing (errors are mapped to exit codes and messages).
int run_eval_cli(const EvalCliOptions& options, const ScenarioRegistry& registry,
                 std::ostream& out, std::ostream& err);

/// Splits a comma-separated scenario list ("fig3,table1"), dropping empty
/// segments.
std::vector<std::string> split_scenario_list(const std::string& value);

}  // namespace hdlock::eval
