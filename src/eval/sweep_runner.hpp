#pragma once

/// \file sweep_runner.hpp
/// Thread-pooled execution of a scenario's trial plan.
///
/// Trials are independent by contract (scenario.hpp), so the runner hands
/// them to a pool of workers via an atomic cursor.  Three properties make
/// the output reproducible at any thread count:
///
///  - every trial's seed is derived from (run seed, scenario name, trial
///    index) before any thread starts — never from scheduling;
///  - results land in a pre-sized vector at their plan index, so report
///    order equals plan order regardless of completion order;
///  - a trial that throws is captured as that trial's error string (the
///    sweep keeps going and the report turns non-ok) instead of tearing
///    down the run.
///
/// Wall-clock per trial and per scenario is recorded separately from the
/// metrics so report.hpp can strip it for bit-identical comparisons.

#include <cstddef>
#include <string>
#include <vector>

#include "eval/scenario.hpp"

namespace hdlock::eval {

struct TrialResult {
    TrialSpec spec;
    std::uint64_t seed = 0;
    Json metrics;        ///< null when the trial errored
    std::string error;   ///< empty on success
    double seconds = 0.0;

    bool ok() const noexcept { return error.empty(); }
};

struct ScenarioRunReport {
    ScenarioInfo info;
    RunOptions options;
    std::size_t n_planned = 0;  ///< plan size before the max_trials bound
    std::vector<TrialResult> trials;
    double total_seconds = 0.0;

    std::size_t n_errors() const noexcept;
    /// Green run: at least one trial executed and none errored — the CI
    /// reproduce gate ("fails on any scenario error or empty report").
    bool ok() const noexcept { return !trials.empty() && n_errors() == 0; }
};

class SweepRunner {
public:
    explicit SweepRunner(RunOptions options) : options_(options) {}

    const RunOptions& options() const noexcept { return options_; }

    /// Worker threads a sweep of `n_trials` fans out to: the requested
    /// count (0 = hardware concurrency), capped by the trial count.
    std::size_t resolved_threads(std::size_t n_trials) const noexcept;

    ScenarioRunReport run(const Scenario& scenario) const;

private:
    RunOptions options_;
};

}  // namespace hdlock::eval
