#pragma once

/// \file render.hpp
/// Human-readable rendering of scenario reports — the text/CSV output the
/// old bench_figN binaries printed, produced generically from the report
/// structure instead of per-bench printf code.
///
/// Layout: a header line (name, paper ref, mode, trial/error counts), one
/// summary table whose rows are trials and whose columns are the union of
/// scalar params and scalar metrics, then one table per trial series
/// (metrics.series.*).  Text mode subsamples long series like the old
/// benches did; CSV emits every row.

#include <string>

#include "eval/sweep_runner.hpp"

namespace hdlock::eval {

/// Aligned-table rendering for terminals.
std::string render_text(const ScenarioRunReport& report);

/// CSV blocks (one per table, preceded by a `# <title>` comment line) for
/// plotting pipelines.
std::string render_csv(const ScenarioRunReport& report);

/// Scalar Json -> table cell ("yes"/"no" booleans, %.6g doubles).
std::string render_scalar(const Json& value);

}  // namespace hdlock::eval
