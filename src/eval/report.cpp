#include "eval/report.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>

#include "util/kernels.hpp"
#include "util/sync.hpp"

#ifdef __unix__
#include <unistd.h>
#endif

namespace hdlock::eval {

namespace {

std::string iso8601_now() {
    // hdlock-lint: allow(nondeterminism) — run-context timestamp only; it is
    // stripped from deterministic dumps (include_context = false) before any
    // byte comparison.
    const std::time_t now = std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
    std::tm utc{};
#ifdef _WIN32
    gmtime_s(&utc, &now);
#else
    gmtime_r(&now, &utc);
#endif
    char buffer[48];
    std::snprintf(buffer, sizeof buffer, "%04d-%02d-%02dT%02d:%02d:%02d+00:00",
                  utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour, utc.tm_min,
                  utc.tm_sec);
    return buffer;
}

std::string host_name() {
#ifdef __unix__
    char buffer[256] = {};
    if (gethostname(buffer, sizeof buffer - 1) == 0 && buffer[0] != '\0') return buffer;
#endif
    return "unknown";
}

const char* run_mode(const RunOptions& options) {
    if (options.smoke) return "smoke";
    if (options.full) return "full";
    return "default";
}

}  // namespace

Json run_context_json(const RunOptions& options, const std::string& executable) {
    Json context = Json::object();
    context["date"] = iso8601_now();
    context["host_name"] = host_name();
    if (!executable.empty()) context["executable"] = executable;
    context["num_cpus"] = util::hardware_concurrency();
    context["n_threads"] = options.n_threads;
    // Hardware attribution: detected SIMD features and the kernel backend
    // the run actually used.  Context lives behind --no-timing stripping, so
    // byte-compare CI stays backend-agnostic (the payload is bit-identical
    // across backends by the kernels:: contract anyway).
    context["cpu"] = util::kernels::cpu_feature_string();
    context["backend"] = util::kernels::active_name();
#ifdef NDEBUG
    context["library_build_type"] = "release";
#else
    context["library_build_type"] = "debug";
#endif
    return context;
}

Json scenario_report_json(const ScenarioRunReport& report, const ReportJsonOptions& options) {
    Json scenario = Json::object();
    scenario["name"] = report.info.name;
    scenario["paper_ref"] = report.info.paper_ref;
    scenario["description"] = report.info.description;
    scenario["run_mode"] = run_mode(report.options);
    scenario["seed"] = report.options.seed;
    scenario["n_planned"] = report.n_planned;
    scenario["n_trials"] = report.trials.size();
    scenario["n_errors"] = report.n_errors();

    Json trials = Json::array();
    for (const auto& trial : report.trials) {
        Json entry = Json::object();
        entry["name"] = trial.spec.name;
        entry["seed"] = trial.seed;
        entry["params"] = trial.spec.params;
        if (trial.ok()) {
            Json metrics = trial.metrics;
            if (!options.include_timing && metrics.is_object()) metrics.erase("timing");
            entry["metrics"] = std::move(metrics);
        } else {
            entry["error"] = trial.error;
        }
        if (options.include_timing) entry["seconds"] = trial.seconds;
        trials.push_back(std::move(entry));
    }
    scenario["trials"] = std::move(trials);
    if (options.include_timing) scenario["total_seconds"] = report.total_seconds;
    return scenario;
}

Json full_report_json(std::span<const ScenarioRunReport> reports,
                      const ReportJsonOptions& options) {
    Json root = Json::object();
    if (options.include_context) {
        // All runs in one file share the thread/seed options of the first;
        // the driver only batches scenarios from a single invocation.
        const RunOptions run_options = reports.empty() ? RunOptions{} : reports.front().options;
        root["context"] = run_context_json(run_options, options.executable);
    }
    Json scenarios = Json::array();
    for (const auto& report : reports) {
        scenarios.push_back(scenario_report_json(report, options));
    }
    root["scenarios"] = std::move(scenarios);
    return root;
}

std::string deterministic_dump(const ScenarioRunReport& report) {
    ReportJsonOptions options;
    options.include_timing = false;
    options.include_context = false;
    return scenario_report_json(report, options).dump(2);
}

}  // namespace hdlock::eval
