#include "eval/json.hpp"

#include <charconv>
#include <cmath>

#include "util/error.hpp"

namespace hdlock::eval {

namespace {

void dump_value(const Json& value, std::string& out, int indent, int depth);

void append_indent(std::string& out, int indent, int depth) {
    if (indent >= 0) {
        out += '\n';
        out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
    }
}

void dump_array(const Json::Array& array, std::string& out, int indent, int depth) {
    if (array.empty()) {
        out += "[]";
        return;
    }
    out += '[';
    for (std::size_t i = 0; i < array.size(); ++i) {
        if (i != 0) out += ',';
        append_indent(out, indent, depth + 1);
        dump_value(array[i], out, indent, depth + 1);
    }
    append_indent(out, indent, depth);
    out += ']';
}

void dump_object(const Json::Object& object, std::string& out, int indent, int depth) {
    if (object.empty()) {
        out += "{}";
        return;
    }
    out += '{';
    for (std::size_t i = 0; i < object.size(); ++i) {
        if (i != 0) out += ',';
        append_indent(out, indent, depth + 1);
        out += json_quote(object[i].first);
        out += indent >= 0 ? ": " : ":";
        dump_value(object[i].second, out, indent, depth + 1);
    }
    append_indent(out, indent, depth);
    out += '}';
}

void dump_value(const Json& value, std::string& out, int indent, int depth) {
    switch (value.kind()) {
        case Json::Kind::null:
            out += "null";
            return;
        case Json::Kind::boolean:
            out += value.as_bool() ? "true" : "false";
            return;
        case Json::Kind::integer:
            out += value.integer_to_string();
            return;
        case Json::Kind::number:
            out += json_number(value.as_double());
            return;
        case Json::Kind::string:
            out += json_quote(value.as_string());
            return;
        case Json::Kind::array:
            dump_array(value.as_array(), out, indent, depth);
            return;
        case Json::Kind::object:
            dump_object(value.as_object(), out, indent, depth);
            return;
    }
}

}  // namespace

Json& Json::operator[](std::string_view key) {
    if (is_null()) value_ = Object{};
    HDLOCK_EXPECTS(is_object(), "Json::operator[]: not an object");
    auto& object = std::get<Object>(value_);
    for (auto& [name, value] : object) {
        if (name == key) return value;
    }
    object.emplace_back(std::string(key), Json());
    return object.back().second;
}

const Json* Json::find(std::string_view key) const noexcept {
    if (!is_object()) return nullptr;
    for (const auto& [name, value] : std::get<Object>(value_)) {
        if (name == key) return &value;
    }
    return nullptr;
}

const Json& Json::at(std::string_view key) const {
    const Json* found = find(key);
    HDLOCK_EXPECTS(found != nullptr, "Json::at: missing key '" + std::string(key) + "'");
    return *found;
}

const Json& Json::at(std::size_t index) const {
    const auto& array = as_array();
    HDLOCK_EXPECTS(index < array.size(), "Json::at: array index out of range");
    return array[index];
}

void Json::push_back(Json element) {
    if (is_null()) value_ = Array{};
    HDLOCK_EXPECTS(is_array(), "Json::push_back: not an array");
    std::get<Array>(value_).push_back(std::move(element));
}

bool Json::erase(std::string_view key) {
    if (!is_object()) return false;
    auto& object = std::get<Object>(value_);
    for (auto it = object.begin(); it != object.end(); ++it) {
        if (it->first == key) {
            object.erase(it);
            return true;
        }
    }
    return false;
}

std::size_t Json::size() const noexcept {
    if (is_array()) return std::get<Array>(value_).size();
    if (is_object()) return std::get<Object>(value_).size();
    return 0;
}

Json::Kind Json::kind() const noexcept {
    // Both integral alternatives present as Kind::integer; later indices
    // shift down by one.
    const std::size_t index = value_.index();
    if (index <= 2) return static_cast<Kind>(index);
    return static_cast<Kind>(index - 1);
}

bool Json::as_bool() const {
    HDLOCK_EXPECTS(kind() == Kind::boolean, "Json::as_bool: not a boolean");
    return std::get<bool>(value_);
}

std::int64_t Json::as_int() const {
    HDLOCK_EXPECTS(std::holds_alternative<std::int64_t>(value_),
                   "Json::as_int: not an int64-representable integer");
    return std::get<std::int64_t>(value_);
}

std::uint64_t Json::as_uint() const {
    if (std::holds_alternative<std::uint64_t>(value_)) return std::get<std::uint64_t>(value_);
    HDLOCK_EXPECTS(std::holds_alternative<std::int64_t>(value_) &&
                       std::get<std::int64_t>(value_) >= 0,
                   "Json::as_uint: not a non-negative integer");
    return static_cast<std::uint64_t>(std::get<std::int64_t>(value_));
}

std::string Json::integer_to_string() const {
    char buffer[24];
    const auto result =
        std::holds_alternative<std::uint64_t>(value_)
            ? std::to_chars(buffer, buffer + sizeof buffer, std::get<std::uint64_t>(value_))
            : std::to_chars(buffer, buffer + sizeof buffer, as_int());
    return std::string(buffer, result.ptr);
}

double Json::as_double() const {
    if (std::holds_alternative<std::int64_t>(value_)) {
        return static_cast<double>(std::get<std::int64_t>(value_));
    }
    if (std::holds_alternative<std::uint64_t>(value_)) {
        return static_cast<double>(std::get<std::uint64_t>(value_));
    }
    HDLOCK_EXPECTS(kind() == Kind::number, "Json::as_double: not a number");
    return std::get<double>(value_);
}

const std::string& Json::as_string() const {
    HDLOCK_EXPECTS(kind() == Kind::string, "Json::as_string: not a string");
    return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
    HDLOCK_EXPECTS(is_array(), "Json::as_array: not an array");
    return std::get<Array>(value_);
}

const Json::Object& Json::as_object() const {
    HDLOCK_EXPECTS(is_object(), "Json::as_object: not an object");
    return std::get<Object>(value_);
}

std::string Json::dump(int indent) const {
    std::string out;
    dump_value(*this, out, indent, 0);
    return out;
}

std::string json_quote(std::string_view text) {
    std::string out;
    out.reserve(text.size() + 2);
    out += '"';
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    static constexpr char hex[] = "0123456789abcdef";
                    out += "\\u00";
                    out += hex[(c >> 4) & 0xF];
                    out += hex[c & 0xF];
                } else {
                    out += c;
                }
        }
    }
    out += '"';
    return out;
}

std::string json_number(double value) {
    if (!std::isfinite(value)) return "null";
    char buffer[32];
    const auto result = std::to_chars(buffer, buffer + sizeof buffer, value);
    return std::string(buffer, result.ptr);
}

}  // namespace hdlock::eval
