#include "eval/registry.hpp"

#include "eval/scenarios/scenarios.hpp"
#include "util/error.hpp"

namespace hdlock::eval {

void ScenarioRegistry::add(std::shared_ptr<const Scenario> scenario) {
    HDLOCK_EXPECTS(scenario != nullptr, "ScenarioRegistry::add: null scenario");
    const std::string& name = scenario->info().name;
    if (name.empty()) {
        throw ConfigError("ScenarioRegistry::add: scenario name must not be empty");
    }
    if (contains(name)) {
        throw ConfigError("ScenarioRegistry::add: duplicate scenario name '" + name + "'");
    }
    scenarios_.push_back(std::move(scenario));
}

bool ScenarioRegistry::contains(std::string_view name) const noexcept {
    for (const auto& scenario : scenarios_) {
        if (scenario->info().name == name) return true;
    }
    return false;
}

const Scenario& ScenarioRegistry::at(std::string_view name) const {
    for (const auto& scenario : scenarios_) {
        if (scenario->info().name == name) return *scenario;
    }
    std::string message = "unknown scenario '" + std::string(name) + "'; available:";
    for (const auto& scenario : scenarios_) {
        message += " " + scenario->info().name;
    }
    if (scenarios_.empty()) message += " (none registered)";
    throw Error(message);
}

std::vector<const Scenario*> ScenarioRegistry::scenarios() const {
    std::vector<const Scenario*> result;
    result.reserve(scenarios_.size());
    for (const auto& scenario : scenarios_) result.push_back(scenario.get());
    return result;
}

std::vector<std::string> ScenarioRegistry::names() const {
    std::vector<std::string> result;
    result.reserve(scenarios_.size());
    for (const auto& scenario : scenarios_) result.push_back(scenario->info().name);
    return result;
}

ScenarioRegistry make_builtin_registry() {
    ScenarioRegistry registry;
    scenarios::register_fig3(registry);
    scenarios::register_lock_sweeps(registry);   // fig5 + fig6
    scenarios::register_fig7(registry);
    scenarios::register_fig8(registry);
    scenarios::register_fig9(registry);
    scenarios::register_table1(registry);
    scenarios::register_beyond_paper(registry);  // lock-grid, noise-robustness, ngram-lock
    scenarios::register_router(registry);        // router-slo serving tier
    scenarios::register_rotation(registry);      // key-rotation epoch hot swap
    return registry;
}

const ScenarioRegistry& builtin_registry() {
    static const ScenarioRegistry registry = make_builtin_registry();
    return registry;
}

}  // namespace hdlock::eval
