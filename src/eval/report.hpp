#pragma once

/// \file report.hpp
/// JSON serialization of scenario run reports.
///
/// The file schema follows the bench/results/ convention (google-benchmark
/// style): a top-level "context" object carrying everything about the
/// machine and execution (date, host, executable, cpu count, thread count,
/// build type) and a top-level payload array — here "scenarios" instead of
/// "benchmarks".
///
/// Determinism contract: with include_context = false and include_timing =
/// false the serialized report is a pure function of (scenario, smoke/full,
/// seed) — identical bytes at any thread count.  Everything legitimately
/// non-deterministic lives either in "context" or under a "timing" key
/// ("seconds", "total_seconds", and each trial's metrics.timing object), so
/// "excluding timing metadata" is a mechanical strip, not a fuzzy diff.

#include <span>
#include <string>

#include "eval/json.hpp"
#include "eval/sweep_runner.hpp"

namespace hdlock::eval {

struct ReportJsonOptions {
    bool include_timing = true;   ///< per-trial seconds, totals, metrics.timing
    bool include_context = true;  ///< the host/date/threads context block
    std::string executable;       ///< recorded in context when non-empty
};

/// The context block: date, host_name, executable, num_cpus, n_threads,
/// cpu (detected SIMD features), backend (active kernel backend),
/// library_build_type — the environment of the run.  Everything here is
/// machine-dependent, which is why --no-timing strips the whole block: the
/// remaining payload is a pure function of (scenario, mode, seed) on any
/// host and any kernel backend.
Json run_context_json(const RunOptions& options, const std::string& executable);

/// One scenario's report: info, mode, seed, trial list (params, metrics,
/// per-trial seed), error strings, counts.
Json scenario_report_json(const ScenarioRunReport& report, const ReportJsonOptions& options);

/// The full file: {"context": ..., "scenarios": [...]}; context omitted
/// when include_context is false.
Json full_report_json(std::span<const ScenarioRunReport> reports,
                      const ReportJsonOptions& options);

/// Canonical deterministic serialization of one report (no context, no
/// timing, 2-space indent) — what the determinism tests and the CI
/// reproduce gate byte-compare across thread counts.
std::string deterministic_dump(const ScenarioRunReport& report);

}  // namespace hdlock::eval
