#include "eval/render.hpp"

#include <algorithm>
#include <cstdio>

#include "util/table.hpp"

namespace hdlock::eval {

namespace {

/// Collects `key` into `keys` if not already present (insertion order).
void collect_key(std::vector<std::string>& keys, const std::string& key) {
    if (std::find(keys.begin(), keys.end(), key) == keys.end()) keys.push_back(key);
}

bool is_scalar(const Json& value) {
    return !value.is_array() && !value.is_object();
}

/// Union of scalar keys over a range of objects, first-appearance order.
/// The nested "timing" object contributes its scalars as "timing.<key>".
std::vector<std::string> scalar_columns(const std::vector<TrialResult>& trials,
                                        bool from_params) {
    std::vector<std::string> keys;
    for (const auto& trial : trials) {
        const Json& source = from_params ? trial.spec.params : trial.metrics;
        if (!source.is_object()) continue;
        for (const auto& [key, value] : source.as_object()) {
            if (is_scalar(value)) {
                collect_key(keys, key);
            } else if (!from_params && key == "timing" && value.is_object()) {
                for (const auto& [timing_key, timing_value] : value.as_object()) {
                    if (is_scalar(timing_value)) collect_key(keys, "timing." + timing_key);
                }
            }
        }
    }
    return keys;
}

std::string lookup_cell(const Json& object, const std::string& column) {
    if (!object.is_object()) return "";
    if (column.starts_with("timing.")) {
        const Json* timing = object.find("timing");
        if (timing == nullptr) return "";
        const Json* value = timing->find(column.substr(7));
        return value == nullptr ? "" : render_scalar(*value);
    }
    const Json* value = object.find(column);
    return value == nullptr ? "" : render_scalar(*value);
}

util::TextTable summary_table(const ScenarioRunReport& report) {
    const auto param_columns = scalar_columns(report.trials, /*from_params=*/true);
    const auto metric_columns = scalar_columns(report.trials, /*from_params=*/false);

    std::vector<std::string> headers{"trial"};
    headers.insert(headers.end(), param_columns.begin(), param_columns.end());
    headers.insert(headers.end(), metric_columns.begin(), metric_columns.end());
    headers.push_back("status");

    util::TextTable table(headers);
    for (const auto& trial : report.trials) {
        std::vector<std::string> row{trial.spec.name};
        for (const auto& column : param_columns) {
            row.push_back(lookup_cell(trial.spec.params, column));
        }
        for (const auto& column : metric_columns) {
            row.push_back(trial.ok() ? lookup_cell(trial.metrics, column) : "");
        }
        row.push_back(trial.ok() ? "ok" : "ERROR: " + trial.error);
        table.add_row(std::move(row));
    }
    return table;
}

/// Series rows are objects; columns are their scalar-key union.
util::TextTable series_table(const Json::Array& rows, std::size_t step) {
    std::vector<std::string> columns;
    for (const auto& row : rows) {
        if (!row.is_object()) continue;
        for (const auto& [key, value] : row.as_object()) {
            if (is_scalar(value)) collect_key(columns, key);
        }
    }
    util::TextTable table(columns);
    for (std::size_t i = 0; i < rows.size(); i += step) {
        std::vector<std::string> cells;
        cells.reserve(columns.size());
        for (const auto& column : columns) cells.push_back(lookup_cell(rows[i], column));
        table.add_row(std::move(cells));
    }
    return table;
}

constexpr std::size_t kTextSeriesRows = 16;

std::string render(const ScenarioRunReport& report, bool csv) {
    std::string out;
    if (!csv) {
        out += report.info.paper_ref + " [" + report.info.name + "] -- " +
               report.info.description + "\n";
        out += "mode=" + std::string(report.options.smoke ? "smoke"
                                     : report.options.full ? "full"
                                                           : "default") +
               " seed=" + std::to_string(report.options.seed) + " trials=" +
               std::to_string(report.trials.size()) + "/" + std::to_string(report.n_planned) +
               " errors=" + std::to_string(report.n_errors()) + "\n\n";
    }

    const auto emit = [&](const std::string& title, const util::TextTable& table) {
        if (csv) {
            out += "# " + report.info.name + ": " + title + "\n" + table.to_csv() + "\n";
        } else {
            out += "== " + title + " ==\n" + table.to_string() + "\n";
        }
    };

    emit("summary", summary_table(report));

    for (const auto& trial : report.trials) {
        const Json* series = trial.ok() ? trial.metrics.find("series") : nullptr;
        if (series == nullptr || !series->is_object()) continue;
        for (const auto& [name, rows] : series->as_object()) {
            if (!rows.is_array() || rows.size() == 0) continue;
            const auto& array = rows.as_array();
            const std::size_t step =
                csv ? 1 : std::max<std::size_t>(1, array.size() / kTextSeriesRows);
            if (!csv && step > 1) {
                out += "(" + trial.spec.name + "/" + name + " subsampled every " +
                       std::to_string(step) + " rows; --csv or --json for all)\n";
            }
            emit(trial.spec.name + "/" + name, series_table(array, step));
        }
    }
    return out;
}

}  // namespace

std::string render_scalar(const Json& value) {
    switch (value.kind()) {
        case Json::Kind::null:
            return "";
        case Json::Kind::boolean:
            return value.as_bool() ? "yes" : "no";
        case Json::Kind::integer:
            // Exact path: as_int() would throw for uint64 payloads above
            // int64 max (e.g. echoed trial seeds).
            return value.integer_to_string();
        case Json::Kind::number: {
            char buffer[32];
            std::snprintf(buffer, sizeof buffer, "%.6g", value.as_double());
            return buffer;
        }
        case Json::Kind::string:
            return value.as_string();
        case Json::Kind::array:
        case Json::Kind::object:
            return "<nested>";
    }
    return "";
}

std::string render_text(const ScenarioRunReport& report) { return render(report, false); }

std::string render_csv(const ScenarioRunReport& report) { return render(report, true); }

}  // namespace hdlock::eval
