#pragma once

/// \file eval.hpp
/// Umbrella header for the reproduction-evaluation harness.
///
/// The canonical way to reproduce a paper result:
///
///     const auto& registry = eval::builtin_registry();
///     eval::SweepRunner runner({.smoke = false, .seed = 1, .n_threads = 8});
///     const auto report = runner.run(registry.at("fig8"));
///     std::cout << eval::render_text(report);
///     write_file(path, eval::full_report_json({&report, 1}, {}).dump(2));
///
/// Or from the shell:  `hdlock_eval --scenario fig8 --threads 8 --json`.
/// See scenario.hpp for the trial/determinism model, report.hpp for the
/// JSON schema, driver.hpp for the CLI contract shared by hdlock_eval and
/// `hdlock_cli eval`.

#include "eval/driver.hpp"        // IWYU pragma: export
#include "eval/json.hpp"          // IWYU pragma: export
#include "eval/registry.hpp"      // IWYU pragma: export
#include "eval/render.hpp"        // IWYU pragma: export
#include "eval/report.hpp"        // IWYU pragma: export
#include "eval/scenario.hpp"      // IWYU pragma: export
#include "eval/sweep_runner.hpp"  // IWYU pragma: export
