/// \file hw_cost_explorer.cpp
/// Interactive exploration of the encoder datapath cost model behind Fig. 9:
/// how key depth, datapath width and memory ports trade off against the
/// attack complexity bought.
///
///   $ ./hw_cost_explorer [N] [D] [P]         (defaults: 784 10000 784)
///
/// Prints, for L = 0..5: encode cycles, relative overhead, microseconds at
/// 200 MHz, the log10 attack complexity, and the secure-memory footprint —
/// the security-vs-latency trade-off table a deployment engineer would use
/// to pick L (the paper recommends L = 2: 10 orders of magnitude for 21%
/// latency).

#include <cstdlib>
#include <iostream>

#include "api/api.hpp"
#include "core/complexity.hpp"
#include "hw/pipeline_model.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace hdlock;

    const std::size_t n_features = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 784;
    const std::size_t dim = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10000;
    const std::size_t pool = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : n_features;
    if (n_features == 0 || dim == 0 || pool == 0) {
        std::cerr << "usage: " << argv[0] << " [N] [D] [P]\n";
        return 2;
    }

    const hw::HwConfig hw_config;
    std::cout << "HDLock deployment explorer -- N=" << n_features << ", D=" << dim
              << ", P=" << pool << " (datapath " << hw_config.datapath_width << "b, "
              << hw_config.memory_ports << " port(s), " << hw_config.clock_mhz << " MHz)\n\n";

    util::TextTable table({"L", "cycles/sample", "relative", "us/sample", "log10_guesses",
                           "attack_gain", "secure_mem"});
    for (std::size_t layers = 0; layers <= 5; ++layers) {
        const hw::EncoderPipelineModel model(hw_config, dim, n_features, layers);
        const auto footprint = complexity::footprint(n_features, dim, pool, layers,
                                                     /*n_levels=*/16, /*n_classes=*/10);
        table.add_row(
            {layers == 0 ? "0 (off)" : std::to_string(layers),
             std::to_string(model.cycles()), util::format_fixed(model.relative_to_baseline(), 3),
             util::format_fixed(model.encode_cost().microseconds(hw_config.clock_mhz), 1),
             util::format_fixed(complexity::log10_guesses(n_features, dim, pool, layers), 2),
             util::format_pow10(complexity::security_gain_log10(n_features, dim, pool, layers)),
             util::format_bits(footprint.secure_total_bits())});
    }
    std::cout << table.to_string();

    std::cout << "\npublic memory (pool + values + class HVs): "
              << util::format_bits(complexity::footprint(n_features, dim, pool, 2, 16, 10)
                                       .public_total_bits())
              << " -- the threat model's point: the secure column above is what fits in "
                 "tamper-proof storage, the public blob does not\n";

    // Concrete artifact sizes at the recommended L = 2: the owner `.hdlk`
    // bundle vs. the key-free device export (api/bundle.hpp format).
    DeploymentConfig config;
    config.dim = dim;
    config.n_features = n_features;
    config.pool_size = pool;
    config.n_layers = 2;
    config.n_levels = 16;
    const api::Owner owner = api::Owner::provision(config);
    std::cout << "\nartifact sizes at L=2: owner.hdlk " << owner.to_bundle().serialized_bytes()
              << " B (key inside), device.hdlk "
              << owner.to_device_bundle().serialized_bytes()
              << " B (key stripped, FeaHVs materialized)\n";
    return 0;
}
