/// \file locked_deployment.cpp
/// The same theft attempt as ip_theft_demo, replayed against an
/// HDLock-protected device (Sec. 4) — and the trust boundary in action,
/// expressed at the type level by the api:: facades.
///
///   $ ./locked_deployment
///
/// Shows: (i) the owner/device privilege split as types — api::Device has no
/// key accessor and its bundle contains no key bytes; (ii) the sealed
/// SecureStore refuses key reads; (iii) the naive divide-and-conquer attack
/// collapses; (iv) the joint search the attacker is left with is
/// astronomically large (Eq. 9's (D*P)^L per feature).

#include <iostream>

#include "api/api.hpp"
#include "attack/locked_theft.hpp"
#include "core/complexity.hpp"
#include "data/synthetic.hpp"
#include "util/table.hpp"

int main() {
    using namespace hdlock;

    data::SyntheticSpec spec;
    spec.name = "victim";
    spec.n_features = 96;
    spec.n_classes = 5;
    spec.n_train = 400;
    spec.n_test = 200;
    spec.n_levels = 12;
    spec.noise = 0.12;
    spec.seed = 99;
    const auto benchmark = data::make_benchmark(spec);

    // The trust boundary, twice over.  First at the type level: what ships
    // to the field is an api::Device — provision an owner, train, export.
    {
        DeploymentConfig config;
        config.dim = 4096;
        config.n_features = spec.n_features;
        config.n_levels = spec.n_levels;
        config.n_layers = 2;
        config.seed = 5;
        api::Owner owner = api::Owner::provision(config);
        owner.train(benchmark.train);
        const api::Device device = owner.make_device();

        // api::Device has no key() method and its encoder is the sealed
        // base interface — this is not a convention, it does not compile:
        //   device.key();                     // no such member
        //   device.encoder().key();           // hdc::Encoder has no key()
        std::cout << "[device]   serving accuracy without any key material: "
                  << device.evaluate(benchmark.test) << "\n";

        // Second, the runtime boundary of the simulated tamper-proof memory:
        // after seal(), key reads throw.
        owner.deployment().secure->seal();
        try {
            (void)owner.key();
            std::cout << "BUG: sealed key was readable\n";
        } catch (const AccessDenied& denied) {
            std::cout << "[device]   sealed secure store refuses key reads: " << denied.what()
                      << "\n";
        }
    }

    // The full attack replay, once per key depth.
    util::TextTable table({"L", "victim_acc", "transfer_acc", "chance", "fea_hv_recovered",
                           "naive_margin", "guesses_required"});
    for (const std::size_t n_layers : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
        attack::LockedTheftConfig config;
        config.kind = hdc::ModelKind::binary;
        config.dim = 4096;
        config.n_levels = spec.n_levels;
        config.n_layers = n_layers;
        config.seed = 5;
        const auto report = attack::steal_locked_model(benchmark.train, benchmark.test, config);
        table.add_row({std::to_string(n_layers), util::format_fixed(report.original_accuracy, 3),
                       util::format_fixed(report.transfer_accuracy, 3),
                       util::format_fixed(report.chance_accuracy, 3),
                       util::format_fixed(report.feature_hv_recovery, 3),
                       util::format_fixed(report.naive_attack_margin, 4),
                       util::format_pow10(report.log10_guesses_required)});
    }
    std::cout << "\nnaive Sec. 3.2 attack vs. HDLock (N=" << spec.n_features << ", D=4096, P=N):\n"
              << table.to_string();

    std::cout << "unprotected baseline would need "
              << util::format_pow10(complexity::log10_guesses(spec.n_features, 4096,
                                                              spec.n_features, 0))
              << " guesses and leak completely (see ip_theft_demo)\n";
    return 0;
}
