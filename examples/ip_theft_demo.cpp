/// \file ip_theft_demo.cpp
/// The attacker's view of Sec. 3: stealing an *unprotected* HDC model step
/// by step, given only the unindexed public hypervector memory and the
/// ability to feed inputs and observe encodings.
///
///   $ ./ip_theft_demo
///
/// Steps (Fig. 2 of the paper):
///   1. scan pairwise Hamming distances of the public value slots — the two
///      quasi-orthogonal endpoints expose ValHV_1 / ValHV_M (Eq. 1b);
///   2. craft an all-minimum input and unwrap Eq. 5/6 to orient the chain;
///   3. per feature, craft the Eq. 7 probe and score every pool candidate
///      (Eq. 8) — the divide-and-conquer mapping recovery;
///   4. assemble a cloned encoder and train a duplicate model.

#include <iostream>

#include "attack/ip_theft.hpp"
#include "data/synthetic.hpp"

int main() {
    using namespace hdlock;

    data::SyntheticSpec spec;
    spec.name = "victim";
    spec.n_features = 96;
    spec.n_classes = 5;
    spec.n_train = 400;
    spec.n_test = 200;
    spec.n_levels = 12;
    spec.noise = 0.12;
    spec.seed = 99;
    const auto benchmark = data::make_benchmark(spec);

    // The owner deploys WITHOUT HDLock: index mapping hidden, raw
    // hypervectors public (the paper's baseline threat model).
    DeploymentConfig device;
    device.dim = 4096;
    device.n_features = spec.n_features;
    device.n_levels = spec.n_levels;
    device.n_layers = 0;
    device.seed = 5;
    const Deployment deployment = provision(device);

    hdc::PipelineConfig pipeline;
    pipeline.train.kind = hdc::ModelKind::binary;
    const auto victim = hdc::HdcClassifier::fit(benchmark.train, deployment.encoder, pipeline);
    std::cout << "[owner]    victim deployed, test accuracy "
              << victim.evaluate(benchmark.test) << "\n";

    // ---- Attacker: sees only (PublicStore, EncodingOracle). ----
    const attack::EncodingOracle oracle(deployment.encoder);

    std::cout << "[attacker] step 1+2: reasoning the value mapping from the "
              << deployment.store->n_levels() << " public value slots...\n";
    const auto values = attack::extract_value_mapping(*deployment.store, oracle,
                                                      /*binary_oracle=*/true);
    std::cout << "           endpoints at slots " << values.endpoint_low << " and "
              << values.endpoint_high << " (normalized distance "
              << values.endpoint_distance << "), orientation margin "
              << values.orientation_margin << "\n";

    std::cout << "[attacker] step 3: divide-and-conquer over " << spec.n_features
              << " features x " << deployment.store->pool_size() << " candidates...\n";
    attack::FeatureAttackConfig feature_config;
    const auto features = attack::extract_feature_mapping(*deployment.store, oracle,
                                                          values.level_to_slot, feature_config);
    std::cout << "           " << features.guesses << " guesses, " << oracle.query_count()
              << " oracle queries, mean decision margin " << features.mean_margin << "\n";

    std::cout << "[attacker] step 4: cloning the encoder and training a duplicate...\n";
    const auto clone_encoder = attack::build_cloned_encoder(
        *deployment.store, features.feature_to_slot, values.level_to_slot, /*tie_seed=*/4242);
    const auto clone = hdc::HdcClassifier::fit(benchmark.train, clone_encoder, pipeline);
    std::cout << "           clone test accuracy " << clone.evaluate(benchmark.test)
              << " (victim: " << victim.evaluate(benchmark.test) << ")\n";

    // ---- Experimenter: score the recovery against the ground truth. ----
    const auto& key = deployment.secure->key();
    std::size_t hits = 0;
    for (std::size_t i = 0; i < spec.n_features; ++i) {
        hits += features.feature_to_slot[i] == key.entry(i, 0).base_index ? 1u : 0u;
    }
    std::cout << "[truth]    feature mapping recovered exactly for " << hits << "/"
              << spec.n_features << " features -- the model IP leaked completely\n";
    return 0;
}
