/// \file ip_theft_demo.cpp
/// The attacker's view of Sec. 3: stealing an *unprotected* HDC model step
/// by step, given only the unindexed public hypervector memory and the
/// ability to feed inputs and observe encodings.
///
///   $ ./ip_theft_demo
///
/// Steps (Fig. 2 of the paper):
///   1. scan pairwise Hamming distances of the public value slots — the two
///      quasi-orthogonal endpoints expose ValHV_1 / ValHV_M (Eq. 1b);
///   2. craft an all-minimum input and unwrap Eq. 5/6 to orient the chain;
///   3. per feature, craft the Eq. 7 probe and score every pool candidate
///      (Eq. 8) — the divide-and-conquer mapping recovery;
///   4. assemble a cloned encoder and train a duplicate model.
///
/// The owner side runs through api::Owner; the attacker sees only what a
/// deployed device exposes — the public store and an encoding oracle.

#include <iostream>

#include "api/api.hpp"
#include "attack/ip_theft.hpp"
#include "data/synthetic.hpp"

int main() {
    using namespace hdlock;

    data::SyntheticSpec spec;
    spec.name = "victim";
    spec.n_features = 96;
    spec.n_classes = 5;
    spec.n_train = 400;
    spec.n_test = 200;
    spec.n_levels = 12;
    spec.noise = 0.12;
    spec.seed = 99;
    const auto benchmark = data::make_benchmark(spec);

    // The owner deploys WITHOUT HDLock: index mapping hidden, raw
    // hypervectors public (the paper's baseline threat model).
    DeploymentConfig config;
    config.dim = 4096;
    config.n_features = spec.n_features;
    config.n_levels = spec.n_levels;
    config.n_layers = 0;
    config.seed = 5;
    api::Owner owner = api::Owner::provision(config);

    api::TrainOptions train;
    train.kind = hdc::ModelKind::binary;
    owner.train(benchmark.train, train);
    const double victim_accuracy = owner.evaluate(benchmark.test);
    std::cout << "[owner]    victim deployed, test accuracy " << victim_accuracy << "\n";

    // ---- Attacker: sees only (PublicStore, EncodingOracle). ----
    const attack::EncodingOracle oracle(owner.encoder());

    std::cout << "[attacker] step 1+2: reasoning the value mapping from the "
              << owner.store().n_levels() << " public value slots...\n";
    const auto values = attack::extract_value_mapping(owner.store(), oracle,
                                                      /*binary_oracle=*/true);
    std::cout << "           endpoints at slots " << values.endpoint_low << " and "
              << values.endpoint_high << " (normalized distance "
              << values.endpoint_distance << "), orientation margin "
              << values.orientation_margin << "\n";

    std::cout << "[attacker] step 3: divide-and-conquer over " << spec.n_features
              << " features x " << owner.store().pool_size() << " candidates...\n";
    attack::FeatureAttackConfig feature_config;
    const auto features = attack::extract_feature_mapping(owner.store(), oracle,
                                                          values.level_to_slot, feature_config);
    std::cout << "           " << features.guesses << " guesses, " << oracle.query_count()
              << " oracle queries, mean decision margin " << features.mean_margin << "\n";

    std::cout << "[attacker] step 4: cloning the encoder and training a duplicate...\n";
    const auto clone_encoder = attack::build_cloned_encoder(
        owner.store(), features.feature_to_slot, values.level_to_slot, /*tie_seed=*/4242);
    hdc::PipelineConfig pipeline;
    pipeline.train.kind = hdc::ModelKind::binary;
    const auto clone = hdc::HdcClassifier::fit(benchmark.train, clone_encoder, pipeline);
    std::cout << "           clone test accuracy " << clone.evaluate(benchmark.test)
              << " (victim: " << victim_accuracy << ")\n";

    // ---- Experimenter: score the recovery against the ground truth. ----
    const auto& key = owner.key();
    std::size_t hits = 0;
    for (std::size_t i = 0; i < spec.n_features; ++i) {
        hits += features.feature_to_slot[i] == key.entry(i, 0).base_index ? 1u : 0u;
    }
    std::cout << "[truth]    feature mapping recovered exactly for " << hits << "/"
              << spec.n_features << " features -- the model IP leaked completely\n";
    return 0;
}
