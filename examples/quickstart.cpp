/// \file quickstart.cpp
/// Smallest end-to-end use of the library: deploy an HDLock-protected HDC
/// classifier through the api:: layer, train it, and serve a batch — the
/// model owner's view.
///
///   $ ./quickstart
///
/// Walkthrough:
///   1. generate a dataset (swap in data::load_csv for your own);
///   2. api::Owner::provision a protected device: public hypervector store,
///      tamper-proof key, locked encoder — one call;
///   3. owner.train() the classification pipeline (discretize -> encode ->
///      train);
///   4. hand the field a key-free api::Device and serve a whole batch
///      through an InferenceSession;
///   5. seal the key memory for deployment.

#include <algorithm>
#include <iostream>

#include "api/api.hpp"
#include "data/synthetic.hpp"

int main() {
    using namespace hdlock;

    // 1. A small 4-class dataset (200 train / 100 test samples, 64 features).
    data::SyntheticSpec spec;
    spec.name = "quickstart";
    spec.n_features = 64;
    spec.n_classes = 4;
    spec.n_train = 200;
    spec.n_test = 100;
    spec.n_levels = 8;
    spec.noise = 0.12;
    spec.seed = 42;
    const auto benchmark = data::make_benchmark(spec);

    // 2. Provision a protected device: D = 4096, a two-layer key over a
    //    64-entry public base pool.
    DeploymentConfig config;
    config.dim = 4096;
    config.n_features = spec.n_features;
    config.n_levels = spec.n_levels;
    config.n_layers = 2;
    config.seed = 7;
    api::Owner owner = api::Owner::provision(config);

    std::cout << "provisioned: D=" << config.dim << ", P=" << owner.store().pool_size()
              << " public bases, L=" << config.n_layers << " key layers\n";

    // 3. Train a binary HDC model through the locked encoder.
    api::TrainOptions train;
    train.kind = hdc::ModelKind::binary;
    train.retrain_epochs = 10;
    owner.train(benchmark.train, train);
    std::cout << "test accuracy (owner side): " << owner.evaluate(benchmark.test) << "\n";

    // 4. What ships: a Device built from the key-free bundle.  Its type has
    //    no key accessor — attack code handed this object cannot reach the
    //    secrets.  Serving is batched: one predict() call classifies the
    //    whole test matrix across worker threads.
    const api::Device device = owner.make_device();
    const auto session = device.open_session({.n_threads = 4});
    const std::vector<int> predicted = session.predict(benchmark.test.X);
    std::cout << "device served " << session.rows_served() << " rows; first sample: predicted "
              << predicted.front() << ", true class " << benchmark.test.y.front() << "\n";

    //    Independent small callers go through predict_async(): the session
    //    coalesces concurrent requests into micro-batches on its worker
    //    pool, and the future resolves to exactly what predict() returns.
    util::Matrix<float> one_row(1, benchmark.test.n_features());
    const auto first = benchmark.test.X.row(0);
    std::copy(first.begin(), first.end(), one_row.row(0).begin());
    auto future = session.predict_async(std::move(one_row));
    std::cout << "async single-row predict agrees with the batch: "
              << (future.get().front() == predicted.front() ? "yes" : "NO") << "\n";

    // 5. Deployed state: the key becomes unreadable, the device keeps
    //    working (it holds only materialized feature hypervectors).
    owner.deployment().secure->seal();
    std::cout << "secure store sealed; device still serves: H has dim "
              << device.encoder().encode(std::vector<int>(spec.n_features, 0)).dim() << "\n";
    return 0;
}
