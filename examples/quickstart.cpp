/// \file quickstart.cpp
/// Smallest end-to-end use of the library: deploy an HDLock-protected HDC
/// classifier, train it, and run inference — the model owner's view.
///
///   $ ./quickstart
///
/// Walkthrough:
///   1. generate a dataset (swap in data::load_csv for your own);
///   2. provision() a protected device: a public hypervector store, a
///      tamper-proof SecureStore holding the key, and the locked encoder;
///   3. fit the classification pipeline (discretize -> encode -> train);
///   4. classify queries; 5. seal the key memory for deployment.

#include <iostream>

#include "core/locked_encoder.hpp"
#include "data/synthetic.hpp"
#include "hdc/classifier.hpp"

int main() {
    using namespace hdlock;

    // 1. A small 4-class dataset (200 train / 100 test samples, 64 features).
    data::SyntheticSpec spec;
    spec.name = "quickstart";
    spec.n_features = 64;
    spec.n_classes = 4;
    spec.n_train = 200;
    spec.n_test = 100;
    spec.n_levels = 8;
    spec.noise = 0.12;
    spec.seed = 42;
    const auto benchmark = data::make_benchmark(spec);

    // 2. Provision a protected device: D = 4096, a two-layer key over a
    //    64-entry public base pool.
    DeploymentConfig device;
    device.dim = 4096;
    device.n_features = spec.n_features;
    device.n_levels = spec.n_levels;
    device.n_layers = 2;
    device.seed = 7;
    const Deployment deployment = provision(device);

    std::cout << "provisioned: D=" << device.dim << ", P=" << deployment.store->pool_size()
              << " public bases, L=" << device.n_layers << " key layers\n";

    // 3. Train a binary HDC model through the locked encoder.
    hdc::PipelineConfig pipeline;
    pipeline.train.kind = hdc::ModelKind::binary;
    pipeline.train.retrain_epochs = 10;
    const auto classifier = hdc::HdcClassifier::fit(benchmark.train, deployment.encoder, pipeline);

    // 4. Inference.
    std::cout << "test accuracy: " << classifier.evaluate(benchmark.test) << "\n";
    const int predicted = classifier.predict_row(benchmark.test.X.row(0));
    std::cout << "first test sample: predicted class " << predicted << ", true class "
              << benchmark.test.y[0] << "\n";

    // 5. Deployed state: the key becomes unreadable, the encoder keeps
    //    working (it materialized its feature hypervectors at provisioning).
    deployment.secure->seal();
    std::cout << "secure store sealed; encoding still works: H has dim "
              << deployment.encoder->encode(std::vector<int>(spec.n_features, 0)).dim() << "\n";
    return 0;
}
