/// \file sequence_classification.cpp
/// HDLock beyond record encoders: locking the *symbol memory* of an n-gram
/// sequence classifier (the encoding family used by HDC text / voice / DNA
/// workloads such as GenieHD).
///
///   $ ./sequence_classification
///
/// Three synthetic "languages" are defined by their preferred symbol
/// transitions; sequences are classified from trigram statistics.  The demo
/// trains the same model over an unprotected symbol memory and over an
/// HDLock-materialized one (Eq. 9 products of pooled bases), showing equal
/// accuracy — and prints the key-search complexity an attacker faces to
/// reason the locked alphabet.

#include <iostream>
#include <vector>

#include "api/api.hpp"
#include "core/complexity.hpp"
#include "core/locked_encoder.hpp"
#include "hdc/model.hpp"
#include "hdc/ngram_encoder.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace hdlock;

constexpr std::size_t kDim = 8192;
constexpr std::size_t kAlphabet = 12;
constexpr int kClasses = 3;
constexpr std::size_t kGram = 3;
constexpr std::size_t kSeqLen = 64;

std::vector<int> language_sample(int cls, util::Xoshiro256ss& rng) {
    std::vector<int> sequence(kSeqLen);
    sequence[0] = static_cast<int>(rng.next_below(kAlphabet));
    for (std::size_t t = 1; t < kSeqLen; ++t) {
        if (rng.next_double() < 0.8) {
            // Each "language" walks the alphabet with its own stride.
            sequence[t] = static_cast<int>(
                (static_cast<std::size_t>(sequence[t - 1]) + static_cast<std::size_t>(cls) * 2 +
                 1) %
                kAlphabet);
        } else {
            sequence[t] = static_cast<int>(rng.next_below(kAlphabet));
        }
    }
    return sequence;
}

hdc::EncodedBatch encode_corpus(const hdc::NGramEncoder& encoder, std::size_t per_class,
                                std::uint64_t seed) {
    util::Xoshiro256ss rng(seed);
    hdc::EncodedBatch batch;
    for (std::size_t s = 0; s < per_class * kClasses; ++s) {
        const int cls = static_cast<int>(s % kClasses);
        const auto sequence = language_sample(cls, rng);
        batch.non_binary.push_back(encoder.encode(sequence));
        batch.binary.push_back(encoder.encode_binary(sequence));
        batch.labels.push_back(cls);
    }
    return batch;
}

double run(const hdc::NGramEncoder& encoder) {
    const auto train = encode_corpus(encoder, 60, 0xAAA);
    const auto test = encode_corpus(encoder, 30, 0xBBB);
    hdc::TrainConfig config;
    config.kind = hdc::ModelKind::binary;
    config.retrain_epochs = 8;
    const auto model = hdc::HdcModel::train(train, kClasses, config);
    return model.evaluate(test);
}

}  // namespace

int main() {
    std::cout << "n-gram sequence classification, " << kClasses << " synthetic languages ("
              << kAlphabet << "-symbol alphabet, " << kGram << "-grams, D=" << kDim << ")\n\n";

    // Unprotected symbol memory: the alphabet hypervectors sit in plain
    // memory exactly like record-encoder FeaHVs — same vulnerability.
    const hdc::NGramEncoder plain(hdc::generate_symbol_hvs(kDim, kAlphabet, 5), kGram, 77);

    // HDLock-protected: symbols are Eq. 9 products over a public pool.  The
    // alphabet plays the role of the feature set, so the owner facade
    // provisions the pool + key exactly as for a record encoder, and the
    // locked symbol memory is materialized from its privileged view.
    DeploymentConfig lock_config;
    lock_config.dim = kDim;
    lock_config.n_features = kAlphabet;
    lock_config.n_levels = 2;
    lock_config.n_layers = 2;
    lock_config.seed = 33;
    const api::Owner owner = api::Owner::provision(lock_config);
    const hdc::NGramEncoder locked(materialize_locked_symbols(owner.store(), owner.key()),
                                   kGram, 77);

    util::TextTable table({"symbol memory", "test accuracy", "mapping search space"});
    table.add_row({"plain (unprotected)", util::format_fixed(run(plain), 3),
                   util::format_pow10(complexity::log10_guesses(kAlphabet, kDim, kAlphabet, 0))});
    table.add_row({"HDLock, L=2", util::format_fixed(run(locked), 3),
                   util::format_pow10(complexity::log10_guesses(kAlphabet, kDim, kAlphabet, 2))});
    std::cout << table.to_string();

    std::cout << "\nsame accuracy, " << util::format_pow10(complexity::security_gain_log10(
                                            kAlphabet, kDim, kAlphabet, 2))
              << "x more expensive to reason the alphabet mapping -- HDLock generalizes to the "
                 "n-gram encoding family\n";
    return 0;
}
