/// \file custom_dataset.cpp
/// Bringing your own data: CSV round-trip, training on a loaded dataset, and
/// persisting / restoring the trained artifacts with the binary serializers.
///
///   $ ./custom_dataset [workdir]             (default: ./custom_dataset_out)
///
/// The synthetic generator stands in for "your" data here so the example is
/// self-contained; point data::load_csv at any numeric CSV with an integer
/// label column to use real data.

#include <filesystem>
#include <iostream>

#include "core/locked_encoder.hpp"
#include "data/loaders.hpp"
#include "data/synthetic.hpp"
#include "hdc/classifier.hpp"
#include "util/serialize.hpp"

int main(int argc, char** argv) {
    using namespace hdlock;
    namespace fs = std::filesystem;

    const fs::path workdir = argc > 1 ? argv[1] : "custom_dataset_out";
    fs::create_directories(workdir);

    // --- Pretend this CSV came from your pipeline.
    data::SyntheticSpec spec;
    spec.name = "sensors";
    spec.n_features = 24;
    spec.n_classes = 3;
    spec.n_train = 300;
    spec.n_test = 120;
    spec.n_levels = 10;
    spec.noise = 0.10;
    spec.seed = 2024;
    const auto generated = data::make_benchmark(spec);
    data::save_csv(generated.train, workdir / "train.csv");
    data::save_csv(generated.test, workdir / "test.csv");
    std::cout << "wrote " << (workdir / "train.csv").string() << " and test.csv\n";

    // --- Load them back (label in the last column by default).
    const auto train = data::load_csv(workdir / "train.csv");
    const auto test = data::load_csv(workdir / "test.csv");
    std::cout << "loaded " << train.n_samples() << " train / " << test.n_samples()
              << " test samples, " << train.n_features() << " features, " << train.n_classes
              << " classes\n";

    // --- Provision, train, evaluate.
    DeploymentConfig device;
    device.dim = 4096;
    device.n_features = train.n_features();
    device.n_levels = spec.n_levels;
    device.n_layers = 2;
    device.seed = 11;
    const Deployment deployment = provision(device);

    hdc::PipelineConfig pipeline;
    pipeline.train.kind = hdc::ModelKind::non_binary;
    const auto classifier = hdc::HdcClassifier::fit(train, deployment.encoder, pipeline);
    std::cout << "trained; test accuracy " << classifier.evaluate(test) << "\n";

    // --- Persist the owner's artifacts: model, key, public store.
    util::save_file(classifier.model(), workdir / "model.hdc");
    util::save_file(deployment.secure->key(), workdir / "key.bin");
    util::save_file(*deployment.store, workdir / "public_store.bin");
    std::cout << "saved model.hdc (" << fs::file_size(workdir / "model.hdc") << " B), key.bin ("
              << fs::file_size(workdir / "key.bin") << " B), public_store.bin ("
              << fs::file_size(workdir / "public_store.bin") << " B)\n";

    // --- Restore and check the round trip end to end.
    const auto restored_model = util::load_file<hdc::HdcModel>(workdir / "model.hdc");
    const auto restored_key = util::load_file<LockKey>(workdir / "key.bin");
    const auto restored_store =
        std::make_shared<const PublicStore>(util::load_file<PublicStore>(workdir / "public_store.bin"));

    const LockedEncoder restored_encoder(restored_store, restored_key,
                                         deployment.secure->value_mapping(),
                                         deployment.encoder->tie_seed());
    const std::vector<int> probe(train.n_features(), 1);
    const bool identical = restored_encoder.encode(probe) == deployment.encoder->encode(probe);
    std::cout << "restored encoder reproduces the original encoding: "
              << (identical ? "yes" : "NO -- round-trip bug") << "\n";
    std::cout << "restored model classes: " << restored_model.n_classes() << "\n";
    return identical ? 0 : 1;
}
