/// \file custom_dataset.cpp
/// Bringing your own data: CSV round-trip, training on a loaded dataset, and
/// persisting / restoring the deployment as single-file `.hdlk` bundles.
///
///   $ ./custom_dataset [workdir]             (default: ./custom_dataset_out)
///
/// The synthetic generator stands in for "your" data here so the example is
/// self-contained; point data::load_csv at any numeric CSV with an integer
/// label column to use real data.  Where this example used to juggle five
/// loose artifacts (store.bin, key.bin, mapping.bin, model.hdc, disc.bin),
/// the bundle format packs everything into owner.hdlk — and device.hdlk is
/// the same deployment with the key physically stripped.

#include <filesystem>
#include <iostream>

#include "api/api.hpp"
#include "data/loaders.hpp"
#include "data/synthetic.hpp"

int main(int argc, char** argv) {
    using namespace hdlock;
    namespace fs = std::filesystem;

    const fs::path workdir = argc > 1 ? argv[1] : "custom_dataset_out";
    fs::create_directories(workdir);

    // --- Pretend this CSV came from your pipeline.
    data::SyntheticSpec spec;
    spec.name = "sensors";
    spec.n_features = 24;
    spec.n_classes = 3;
    spec.n_train = 300;
    spec.n_test = 120;
    spec.n_levels = 10;
    spec.noise = 0.10;
    spec.seed = 2024;
    const auto generated = data::make_benchmark(spec);
    data::save_csv(generated.train, workdir / "train.csv");
    data::save_csv(generated.test, workdir / "test.csv");
    std::cout << "wrote " << (workdir / "train.csv").string() << " and test.csv\n";

    // --- Load them back (label in the last column by default).
    const auto train = data::load_csv(workdir / "train.csv");
    const auto test = data::load_csv(workdir / "test.csv");
    std::cout << "loaded " << train.n_samples() << " train / " << test.n_samples()
              << " test samples, " << train.n_features() << " features, " << train.n_classes
              << " classes\n";

    // --- Provision and train through the api facade.
    DeploymentConfig config;
    config.dim = 4096;
    config.n_features = train.n_features();
    config.n_levels = spec.n_levels;
    config.n_layers = 2;
    config.seed = 11;
    api::Owner owner = api::Owner::provision(config);

    api::TrainOptions options;
    options.kind = hdc::ModelKind::non_binary;
    owner.train(train, options);
    std::cout << "trained; test accuracy " << owner.evaluate(test) << "\n";

    // --- Persist: one owner artifact, one key-free device artifact.
    owner.save(workdir / "owner.hdlk");
    owner.export_device(workdir / "device.hdlk");
    std::cout << "saved owner.hdlk (" << fs::file_size(workdir / "owner.hdlk")
              << " B, key inside) and device.hdlk (" << fs::file_size(workdir / "device.hdlk")
              << " B, key stripped)\n";

    // --- Restore both sides and check the round trip end to end.  The
    // device side uses the zero-copy mapped open: hypervectors are served
    // straight out of the file mapping instead of being copied at startup.
    const api::Owner restored_owner = api::Owner::load(workdir / "owner.hdlk");
    const api::Device restored_device = api::Device::open_mapped(workdir / "device.hdlk");

    const std::vector<int> probe(train.n_features(), 1);
    const bool identical =
        restored_owner.encoder()->encode(probe) == owner.encoder()->encode(probe) &&
        restored_device.encoder().encode(probe) == owner.encoder()->encode(probe);
    std::cout << "restored owner and device reproduce the original encoding: "
              << (identical ? "yes" : "NO -- round-trip bug") << "\n";

    // --- Batched serving from the restored device bundle.
    const auto session = restored_device.open_session({.n_threads = 2});
    const auto predictions = session.predict(test.X);
    std::size_t agree = 0;
    for (std::size_t s = 0; s < test.n_samples(); ++s) {
        agree += predictions[s] == restored_owner.predict_row(test.X.row(s)) ? 1u : 0u;
    }
    std::cout << "device batch predictions match owner per-row predictions: " << agree << "/"
              << test.n_samples() << "\n";
    return identical && agree == test.n_samples() ? 0 : 1;
}
