#pragma once

/// \file cli_args.hpp
/// Flag parsing for hdlock_cli / hdlock_eval, split out so it is
/// unit-testable.
///
/// Grammar: `--flag=value` or `--flag value`; flags declared boolean at
/// construction stand alone (`--smoke`) and never consume the next
/// argument, while `--flag=value` still works for them (`--json=out.json`).
/// Repeated flags accumulate (get_all); the scalar accessors read the last
/// occurrence.  Two historical parser holes are closed here and covered by
/// tests/tools/cli_args_test.cc:
///
///  - a trailing non-boolean `--flag` with no value is a UsageError (the
///    old parser's bounds handling made it easy to silently consume past
///    the end of the argument list);
///  - each subcommand declares its known flags via check_known(), so a typo
///    like `--featurs` is reported by name instead of being ignored.
///
/// UsageError is the "exit code 2" class: the caller printed something the
/// tool cannot interpret, as opposed to a runtime failure (exit 1).

#include <algorithm>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace hdlock::cli {

/// Malformed command line: unknown flag, missing value, non-numeric number.
class UsageError : public Error {
public:
    using Error::Error;
};

class Args {
public:
    /// Parses argv[first..argc). Throws UsageError on a bare non-flag
    /// argument or a trailing non-boolean flag with no value.  Flags named
    /// in `boolean_flags` stand alone: `--smoke` parses as the empty value
    /// and never swallows the following argument; `--flag=value` remains
    /// available for them.
    Args(int argc, char** argv, int first,
         std::initializer_list<std::string_view> boolean_flags = {}) {
        for (int i = first; i < argc; ++i) {
            const std::string arg = argv[i];
            if (!arg.starts_with("--") || arg.size() == 2) {
                throw UsageError("unexpected argument: " + arg);
            }
            const auto eq = arg.find('=');
            if (eq != std::string::npos) {
                values_[arg.substr(2, eq - 2)].push_back(arg.substr(eq + 1));
                continue;
            }
            const std::string name = arg.substr(2);
            const bool is_boolean =
                std::find(boolean_flags.begin(), boolean_flags.end(), name) !=
                boolean_flags.end();
            if (is_boolean) {
                values_[name].push_back("");
            } else if (i + 1 < argc) {
                values_[name].push_back(argv[++i]);
            } else {
                throw UsageError("flag needs a value: " + arg);
            }
        }
    }

    /// Throws UsageError naming every flag not in `known` — call once per
    /// subcommand with its full flag list.
    void check_known(std::string_view subcommand,
                     std::initializer_list<std::string_view> known) const {
        std::vector<std::string> unknown;
        for (const auto& [name, value] : values_) {
            bool found = false;
            for (const auto candidate : known) found = found || candidate == name;
            if (!found) unknown.push_back("--" + name);
        }
        if (!unknown.empty()) {
            std::string message = "unknown flag(s) for '" + std::string(subcommand) + "':";
            for (const auto& flag : unknown) message += " " + flag;
            throw UsageError(message);
        }
    }

    std::string require(const std::string& name) const {
        const auto found = values_.find(name);
        if (found == values_.end()) throw UsageError("missing required flag --" + name);
        return found->second.back();
    }

    std::string get(const std::string& name, const std::string& fallback) const {
        const auto found = values_.find(name);
        return found == values_.end() ? fallback : found->second.back();
    }

    /// Every occurrence of a repeated flag, in command-line order.
    std::vector<std::string> get_all(const std::string& name) const {
        const auto found = values_.find(name);
        return found == values_.end() ? std::vector<std::string>{} : found->second;
    }

    std::uint64_t get_u64(const std::string& name, std::uint64_t fallback) const {
        const auto found = values_.find(name);
        if (found == values_.end()) return fallback;
        const std::string& raw = found->second.back();
        // Digits only: std::stoull would happily wrap "-1" to 2^64 - 1.
        if (raw.empty() || raw.find_first_not_of("0123456789") != std::string::npos) {
            throw UsageError("flag --" + name + " expects a non-negative number, got '" + raw +
                             "'");
        }
        try {
            return std::stoull(raw);
        } catch (const std::exception&) {  // out_of_range
            throw UsageError("flag --" + name + " value is out of range: '" + raw + "'");
        }
    }

    bool has(const std::string& name) const { return values_.contains(name); }

private:
    std::map<std::string, std::vector<std::string>> values_;
};

}  // namespace hdlock::cli
