#pragma once

/// \file eval_cli.hpp
/// Shared flag -> eval::EvalCliOptions translation for the two front ends
/// of the reproduction harness (`hdlock_eval` and `hdlock_cli eval`), split
/// out so both parse identically and the mapping is unit-testable.

#include <string>

#include "cli_args.hpp"
#include "eval/driver.hpp"

namespace hdlock::cli {

/// The flags of driver.hpp's contract that stand alone (no value).
inline const std::initializer_list<std::string_view> kEvalBooleanFlags = {
    "list", "all", "smoke", "full", "json", "no-timing", "csv"};

/// Flag names the eval front ends accept (for Args::check_known).
inline const std::initializer_list<std::string_view> kEvalKnownFlags = {
    "list", "all",     "scenario",   "smoke", "full", "seed",
    "threads", "max-trials", "json", "no-timing", "csv", "backend"};

/// Builds driver options from parsed flags.  `executable` is recorded in
/// the JSON context block.
inline eval::EvalCliOptions parse_eval_options(const Args& args, std::string executable) {
    eval::EvalCliOptions options;
    options.executable = std::move(executable);
    options.list = args.has("list");
    options.all = args.has("all");
    for (const auto& value : args.get_all("scenario")) {
        for (auto& name : eval::split_scenario_list(value)) {
            options.scenarios.push_back(std::move(name));
        }
    }
    options.run.smoke = args.has("smoke");
    options.run.full = args.has("full");
    options.run.seed = args.get_u64("seed", 1);
    options.run.n_threads = args.get_u64("threads", 1);
    options.run.max_trials = args.get_u64("max-trials", 0);
    options.json = args.has("json");
    options.json_path = args.get("json", "");
    options.timing = !args.has("no-timing");
    options.csv = args.has("csv");
    options.backend = args.get("backend", "");
    return options;
}

}  // namespace hdlock::cli
