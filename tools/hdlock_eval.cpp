/// \file hdlock_eval.cpp
/// The paper-reproduction harness CLI: every figure/table of the paper (and
/// the beyond-paper sweeps) as registered eval:: scenarios, run in parallel
/// with machine-readable JSON reports.
///
///   hdlock_eval --list
///   hdlock_eval --all --smoke --threads 4 --json=reports/smoke.json
///   hdlock_eval --scenario fig3 --threads 4 --json --no-timing
///   hdlock_eval --scenario fig5,fig6 --csv
///
/// See src/eval/driver.hpp for the full flag contract and exit codes
/// (0 green, 1 scenario error/empty report, 2 usage error).  The same
/// harness is reachable as `hdlock_cli eval --list/--scenario/--all`.

#include <iostream>

#include "cli_args.hpp"
#include "eval/eval.hpp"
#include "eval_cli.hpp"

namespace {

int usage(std::ostream& out, int code) {
    out << "hdlock_eval -- HDLock paper-reproduction harness\n"
           "usage: hdlock_eval --list\n"
           "       hdlock_eval (--all | --scenario NAME[,NAME...]) [--smoke|--full]\n"
           "                   [--seed S] [--threads N] [--max-trials K]\n"
           "                   [--json[=PATH]] [--no-timing] [--csv]\n"
           "                   [--backend portable|avx2|avx512]\n"
           "see src/eval/driver.hpp for semantics and exit codes\n";
    return code;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace hdlock;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--help" || arg == "-h" || arg == "help") return usage(std::cout, 0);
    }
    try {
        const cli::Args args(argc, argv, 1, cli::kEvalBooleanFlags);
        args.check_known("hdlock_eval", cli::kEvalKnownFlags);
        const auto options = cli::parse_eval_options(args, "hdlock_eval");
        return eval::run_eval_cli(options, eval::builtin_registry(), std::cout, std::cerr);
    } catch (const cli::UsageError& error) {
        std::cerr << "usage error: " << error.what() << "\n";
        return usage(std::cerr, 2);
    } catch (const Error& error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
    } catch (const std::exception& error) {
        std::cerr << "internal error: " << error.what() << "\n";
        return 1;
    }
}
