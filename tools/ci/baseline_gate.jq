# Regression gate for the reproduce-smoke CI job: compares the current
# `hdlock_eval --all --smoke --no-timing` report against the committed
# baseline (bench/results/baseline-smoke.json).
#
#   jq -n --slurpfile base bench/results/baseline-smoke.json \
#         --slurpfile cur  reports/current-smoke.json \
#         -f tools/ci/baseline_gate.jq
#
# Rules (ROADMAP "regression tracking" item):
#   - every baseline trial must exist in the current report, and vice versa;
#   - numeric metrics whose path mentions "accuracy" may drift by at most
#     0.02 in absolute value (HDC training is seed-deterministic here, but a
#     legitimate code change may shift decision boundaries slightly);
#   - complexity metrics (paths mentioning "guesses", "log10", "key_bits")
#     must match exactly — the closed-form Sec. 4 attack-cost math has no
#     business drifting;
#   - kernel-fusion invariants (paths mentioning "fused") must match
#     exactly — the fused encode→distance path is bit-identical by
#     contract, so fused_active / fused_bit_identical may never drift;
#   - all other metrics are attribution/diagnostics and are not gated.
#
# On any violation the script prints one JSON line per violation and exits
# non-zero (halt_error).  To accept a deliberate metric change, regenerate
# the baseline:  hdlock_eval --all --smoke --threads 1 --no-timing \
#                  --json=bench/results/baseline-smoke.json

def abs: if . < 0 then -. else . end;

def trial_map(report):
  [ report.scenarios[]
    | .name as $scenario
    | .trials[]
    | { key: ($scenario + "/" + .name), value: (.metrics // {}) } ]
  | from_entries;

(trial_map($base[0])) as $b
| (trial_map($cur[0])) as $c
| (
    [ ($b | keys_unsorted[]) | select(in($c) | not)
      | {trial: ., problem: "trial missing from current report"} ]
  + [ ($c | keys_unsorted[]) | select(in($b) | not)
      | {trial: ., problem: "trial not in baseline (regenerate baseline-smoke.json)"} ]
  + [ ($b | to_entries[])
      | .key as $trial
      | .value as $bm
      | select($trial | in($c))
      | ($c[$trial]) as $cm
      | ($bm | paths(type == "number")) as $p
      | ($p | map(tostring) | join(".")) as $pathstr
      | ($bm | getpath($p)) as $want
      | ($cm | getpath($p)) as $got
      | if $got == null then
          {trial: $trial, metric: $pathstr, problem: "metric missing", baseline: $want}
        elif ($got | type) != "number" then
          {trial: $trial, metric: $pathstr, problem: "metric changed type",
           baseline: $want, current: $got}
        elif ($pathstr | test("accuracy")) and ((($got - $want) | abs) > 0.02) then
          {trial: $trial, metric: $pathstr, problem: "accuracy drift exceeds 0.02",
           baseline: $want, current: $got}
        elif ($pathstr | test("guesses|log10|key_bits|fused")) and ($got != $want) then
          {trial: $trial, metric: $pathstr, problem: "complexity drift (must be exact)",
           baseline: $want, current: $got}
        else empty end ]
  ) as $violations
| if ($violations | length) == 0 then
    "baseline gate: OK (\($b | length) trials compared)"
  else
    ($violations | map(tojson) | join("\n")) | halt_error(1)
  end
