# Cross-compilation toolchain for the CI aarch64 job: builds the whole tree
# with the distro aarch64 GCC and runs every test binary under qemu-user,
# so the NEON kernel backend (src/util/kernels_neon.cpp) is exercised for
# real instead of compiling to its x86 stub.
#
#   cmake -B build -S . -DCMAKE_TOOLCHAIN_FILE=tools/ci/aarch64-toolchain.cmake
#
# Requires: g++-aarch64-linux-gnu, qemu-user.  The emulator line is what
# makes ctest (and gtest test discovery) transparent — every cross binary
# is invoked as `qemu-aarch64 -L /usr/aarch64-linux-gnu <binary>` so the
# target's libc/libstdc++ resolve from the cross sysroot.

set(CMAKE_SYSTEM_NAME Linux)
set(CMAKE_SYSTEM_PROCESSOR aarch64)

set(CMAKE_C_COMPILER aarch64-linux-gnu-gcc)
set(CMAKE_CXX_COMPILER aarch64-linux-gnu-g++)

set(CMAKE_CROSSCOMPILING_EMULATOR "qemu-aarch64;-L;/usr/aarch64-linux-gnu")

set(CMAKE_FIND_ROOT_PATH /usr/aarch64-linux-gnu)
set(CMAKE_FIND_ROOT_PATH_MODE_PROGRAM NEVER)
# BOTH (not ONLY): the CI job cross-compiles googletest into a host-side
# prefix and points CMAKE_PREFIX_PATH at it.
set(CMAKE_FIND_ROOT_PATH_MODE_LIBRARY BOTH)
set(CMAKE_FIND_ROOT_PATH_MODE_INCLUDE BOTH)
set(CMAKE_FIND_ROOT_PATH_MODE_PACKAGE BOTH)
