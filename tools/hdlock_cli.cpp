/// \file hdlock_cli.cpp
/// Command-line front end over the api:: deployment layer, so a deployment
/// can be provisioned, trained, evaluated, exported and red-teamed without
/// writing C++.
///
/// Artifacts on disk (the `.hdlk` bundle format of api/bundle.hpp):
///   owner.hdlk   owner bundle: PublicStore + SECRET section (LockKey +
///                ValueMapping) + fitted MinMaxDiscretizer + trained
///                HdcModel.  Never leaves the owner's infrastructure.
///   device.hdlk  device bundle: PublicStore + materialized encoder state
///                (no key bytes anywhere in the file) + discretizer + model.
///                This is what ships.
///
/// Subcommands:
///   provision --dir D --features N [--dim D] [--levels M] [--layers L]
///             [--pool P] [--seed S]          create owner.hdlk + audit it
///   audit     --dir D                        re-audit key vs. store
///   train     --dir D --data train.csv [--kind binary|nonbinary]
///             [--epochs E]                   fit model; refresh device.hdlk
///   export    --dir D                        (re)write device.hdlk
///   rotate    --dir D --data train.csv [--seed S] [--kind K] [--epochs E]
///                                            rekey + retrain + epoch bump;
///                                            atomic rewrite of both bundles
///   eval      --dir D --data test.csv [--side auto|owner|device]
///             [--threads T] [--mmap on|off]
///             [--shards N] [--placement P]   batched accuracy via
///                                            api::InferenceSession, or the
///                                            api::ShardRouter fleet when
///                                            --shards/--placement are given
///   eval      --list | --scenario NAME | --all [...]
///                                            paper-reproduction harness
///                                            (same contract as hdlock_eval;
///                                            see src/eval/driver.hpp)
///   attack    --dir D --data train.csv --test test.csv [--kind K] [--seed S]
///                                            replay the Sec. 3.2 theft
///   complexity --features N [--dim D] [--pool P] [--layers L]
///                                            closed-form guess counts
///
/// Exit code 0 on success, 2 on usage errors, 1 on runtime failure.

#include <filesystem>
#include <iostream>
#include <string>

#include "api/api.hpp"
#include "attack/ip_theft.hpp"
#include "attack/locked_theft.hpp"
#include "cli_args.hpp"
#include "core/complexity.hpp"
#include "data/loaders.hpp"
#include "eval/eval.hpp"
#include "eval_cli.hpp"
#include "util/table.hpp"

namespace {

using namespace hdlock;
using cli::Args;
using cli::UsageError;
namespace fs = std::filesystem;

constexpr std::uint64_t kCliTieSeed = 0x7E11;

struct Paths {
    fs::path owner, device;

    explicit Paths(const fs::path& dir)
        : owner(dir / "owner.hdlk"), device(dir / "device.hdlk") {}
};

hdc::ModelKind parse_kind(const std::string& kind) {
    if (kind == "binary") return hdc::ModelKind::binary;
    if (kind == "nonbinary" || kind == "non-binary") return hdc::ModelKind::non_binary;
    throw UsageError("unknown --kind (use binary|nonbinary): " + kind);
}

int cmd_provision(const Args& args) {
    args.check_known("provision", {"dir", "features", "dim", "levels", "layers", "pool", "seed"});
    const fs::path dir = args.require("dir");
    fs::create_directories(dir);

    DeploymentConfig config;
    config.n_features = args.get_u64("features", 0);
    config.dim = args.get_u64("dim", 10000);
    config.n_levels = args.get_u64("levels", 16);
    config.n_layers = args.get_u64("layers", 2);
    config.pool_size = args.get_u64("pool", 0);
    config.seed = args.get_u64("seed", 1);
    config.tie_seed = kCliTieSeed;
    if (config.n_features == 0) throw UsageError("--features is required and must be > 0");

    const api::Owner owner = api::Owner::provision(config);
    const Paths paths(dir);
    owner.save(paths.owner);

    const auto audit = owner.audit();
    std::cout << "provisioned " << paths.owner.string() << " (N=" << config.n_features
              << ", D=" << config.dim << ", M=" << config.n_levels << ", L=" << config.n_layers
              << ", P=" << owner.store().pool_size() << ")\n"
              << "key audit: " << audit.summary() << "\n"
              << "attack complexity: "
              << util::format_pow10(complexity::log10_guesses(
                     config.n_features, config.dim, owner.store().pool_size(), config.n_layers))
              << " guesses\n";
    return audit.ok() ? 0 : 1;
}

int cmd_audit(const Args& args) {
    args.check_known("audit", {"dir"});
    const Paths paths{fs::path(args.require("dir"))};
    const auto report = api::Owner::load(paths.owner).audit();
    std::cout << report.summary() << "\n";
    return report.ok() ? 0 : 1;
}

int cmd_train(const Args& args) {
    args.check_known("train", {"dir", "data", "kind", "epochs"});
    const Paths paths{fs::path(args.require("dir"))};
    const auto dataset = data::load_csv(args.require("data"));

    api::Owner owner = api::Owner::load(paths.owner);
    api::TrainOptions options;
    options.kind = parse_kind(args.get("kind", "binary"));
    options.retrain_epochs = static_cast<int>(args.get_u64("epochs", 10));
    const double train_accuracy = owner.train(dataset, options);

    owner.save(paths.owner);
    owner.export_device(paths.device);
    std::cout << "trained on " << dataset.n_samples() << " samples ("
              << owner.model().epochs_run() << " retrain epochs); train accuracy "
              << util::format_fixed(train_accuracy, 4) << "\n"
              << "wrote " << paths.owner.string() << " and key-free " << paths.device.string()
              << "\n";
    return 0;
}

int cmd_rotate(const Args& args) {
    args.check_known("rotate", {"dir", "data", "kind", "epochs", "seed"});
    const Paths paths{fs::path(args.require("dir"))};
    const auto dataset = data::load_csv(args.require("data"));

    api::Owner owner = api::Owner::load(paths.owner);
    api::RotateOptions options;
    options.seed = args.get_u64("seed", 1);
    options.train.kind = parse_kind(args.get("kind", "binary"));
    options.train.retrain_epochs = static_cast<int>(args.get_u64("epochs", 10));
    const api::RotationReport report = owner.rotate(dataset, options);

    // Crash-safe rewrites: a power cut mid-rotation must leave both
    // artifacts at the previous epoch, never torn.
    owner.save_atomic(paths.owner);
    owner.export_device_atomic(paths.device);
    std::cout << "rotated key: epoch " << report.previous_epoch << " -> " << report.epoch
              << "; retrained on " << dataset.n_samples() << " samples, train accuracy "
              << util::format_fixed(report.train_accuracy, 4) << "\n"
              << "wrote " << paths.owner.string() << " and key-free " << paths.device.string()
              << " (atomic rename)\n"
              << "live fleets pick up epoch " << report.epoch
              << " via InferenceSession::swap_bundle / ShardRouter::swap_all\n";
    return 0;
}

int cmd_export(const Args& args) {
    args.check_known("export", {"dir"});
    const Paths paths{fs::path(args.require("dir"))};
    const api::Owner owner = api::Owner::load(paths.owner);
    owner.export_device(paths.device);
    std::cout << "exported " << paths.device.string() << " ("
              << fs::file_size(paths.device) << " B, no key section)\n";
    return 0;
}

int cmd_eval(const Args& args) {
    // Two personalities behind one subcommand: scenario flags route to the
    // paper-reproduction harness (the hdlock_eval contract), otherwise this
    // is the classic bundle-accuracy evaluation.
    if (args.has("list") || args.has("scenario") || args.has("all")) {
        args.check_known("eval", cli::kEvalKnownFlags);
        const auto options = cli::parse_eval_options(args, "hdlock_cli eval");
        return eval::run_eval_cli(options, eval::builtin_registry(), std::cout, std::cerr);
    }
    args.check_known("eval", {"dir", "data", "side", "threads", "mmap", "shards", "placement"});
    const Paths paths{fs::path(args.require("dir"))};
    const auto dataset = data::load_csv(args.require("data"));

    api::SessionOptions session_options;
    session_options.n_threads = args.get_u64("threads", 1);

    const std::string side = args.get("side", "auto");
    const bool use_device =
        side == "device" || (side == "auto" && fs::exists(paths.device));
    if (side != "auto" && side != "owner" && side != "device") {
        throw UsageError("unknown --side (use auto|owner|device): " + side);
    }
    const std::string mmap = args.get("mmap", "on");
    if (mmap != "on" && mmap != "off") throw UsageError("unknown --mmap (use on|off): " + mmap);

    // --shards / --placement switch evaluation onto the shard-router
    // serving tier (typed requests through api::ShardRouter); the default
    // stays the single-session path.
    const std::size_t shards = args.get_u64("shards", 1);
    const std::string placement_arg = args.get("placement", "least-loaded");
    const auto placement = api::parse_placement(placement_arg);
    if (!placement) {
        throw UsageError(
            "unknown --placement (use round-robin|least-loaded|consistent-hash): " +
            placement_arg);
    }

    if (shards > 1 || args.has("placement")) {
        api::RouterOptions router_options;
        router_options.n_shards = shards;
        router_options.placement = *placement;
        router_options.session = session_options;
        const api::ShardRouter router =
            use_device ? (mmap == "on" ? api::Device::open_mapped(paths.device)
                                       : api::Device::load(paths.device))
                             .open_router(router_options)
                       : api::Owner::load(paths.owner).open_router(router_options);

        // Closed-loop accuracy sweep in fixed-size typed requests: awaiting
        // each response keeps the fleet inside its watermark, so every
        // request serves Ok and the count is exact.
        constexpr std::size_t kRowsPerRequest = 64;
        std::size_t correct = 0;
        for (std::size_t begin = 0; begin < dataset.n_samples(); begin += kRowsPerRequest) {
            const std::size_t n =
                std::min(kRowsPerRequest, dataset.n_samples() - begin);
            api::Request request;
            request.rows = util::Matrix<float>(n, dataset.X.cols());
            for (std::size_t r = 0; r < n; ++r) {
                const auto source = dataset.X.row(begin + r);
                std::copy(source.begin(), source.end(), request.rows.row(r).begin());
            }
            const api::Response response = router.submit(std::move(request)).get();
            if (response.status != api::Status::ok) {
                throw Error(std::string("router eval: request not served: ") +
                            api::status_name(response.status));
            }
            for (std::size_t r = 0; r < n; ++r) {
                if (response.labels[r] == dataset.y[begin + r]) ++correct;
            }
        }
        const double accuracy =
            dataset.n_samples() == 0
                ? 0.0
                : static_cast<double>(correct) / static_cast<double>(dataset.n_samples());
        std::cout << "accuracy on " << dataset.n_samples() << " samples ("
                  << (use_device ? "device" : "owner") << " bundle, "
                  << router.n_shards() << " shard(s), "
                  << api::placement_name(router.placement()) << ", "
                  << session_options.n_threads << " thread(s)/shard): "
                  << util::format_fixed(accuracy, 4) << "\n";
        return 0;
    }

    // The session outlives the facade it came from: it shares the encoder
    // (and, under --mmap on, the bundle mapping) and copies the discretizer
    // + model; device startup defaults to the zero-copy mapped path.
    const api::InferenceSession session =
        use_device ? (mmap == "on" ? api::Device::open_mapped(paths.device)
                                   : api::Device::load(paths.device))
                         .open_session(session_options)
                   : api::Owner::load(paths.owner).open_session(session_options);
    const double accuracy = session.evaluate(dataset);
    std::cout << "accuracy on " << dataset.n_samples() << " samples ("
              << (use_device ? "device" : "owner") << " bundle, "
              << session.n_threads() << " thread(s)): "
              << util::format_fixed(accuracy, 4) << "\n";
    return 0;
}

int cmd_attack(const Args& args) {
    args.check_known("attack", {"dir", "data", "test", "kind", "seed"});
    const auto train = data::load_csv(args.require("data"));
    const auto test = data::load_csv(args.require("test"));
    const Paths paths{fs::path(args.require("dir"))};

    // The attack replay needs the ground truth for scoring, so it runs off
    // the owner bundle's Deployment bridge (unsealed SecureStore).
    const api::Owner owner = api::Owner::load(paths.owner);
    const Deployment& deployment = owner.deployment();

    if (owner.key().is_plain()) {
        attack::IpTheftConfig config;
        config.kind = parse_kind(args.get("kind", "binary"));
        config.seed = args.get_u64("seed", 1);
        const auto report = attack::steal_model(deployment, train, test, config);
        std::cout << "UNPROTECTED deployment: attack succeeded\n"
                  << "  original accuracy  " << util::format_fixed(report.original_accuracy, 4)
                  << "\n  recovered accuracy " << util::format_fixed(report.recovered_accuracy, 4)
                  << "\n  mapping recovered  "
                  << util::format_fixed(report.feature_mapping_accuracy, 4) << " (features), "
                  << util::format_fixed(report.value_mapping_accuracy, 4) << " (values)"
                  << "\n  reasoning time     " << util::format_fixed(report.reasoning_seconds, 3)
                  << " s, " << report.guesses << " guesses\n";
        return 0;
    }

    attack::LockedTheftConfig config;
    config.kind = parse_kind(args.get("kind", "binary"));
    config.seed = args.get_u64("seed", 1);
    const auto report = attack::steal_locked_model(deployment, train, test, config);
    std::cout << "HDLock deployment (L=" << report.n_layers << "): attack failed\n"
              << "  victim accuracy    " << util::format_fixed(report.original_accuracy, 4)
              << "\n  transfer accuracy  " << util::format_fixed(report.transfer_accuracy, 4)
              << " (chance " << util::format_fixed(report.chance_accuracy, 4) << ")"
              << "\n  FeaHVs recovered   " << util::format_fixed(report.feature_hv_recovery, 4)
              << "\n  required guesses   "
              << util::format_pow10(report.log10_guesses_required) << "\n";
    return 0;
}

int cmd_complexity(const Args& args) {
    args.check_known("complexity", {"features", "dim", "pool", "layers"});
    const std::size_t n_features = args.get_u64("features", 784);
    const std::size_t dim = args.get_u64("dim", 10000);
    const std::size_t pool = args.get_u64("pool", n_features);

    util::TextTable table({"L", "guesses", "gain_over_plain", "secure_key_bits"});
    for (std::size_t layers = 0; layers <= args.get_u64("layers", 5); ++layers) {
        const auto footprint = complexity::footprint(n_features, dim, pool, layers, 16, 10);
        table.add_row({std::to_string(layers),
                       util::format_pow10(complexity::log10_guesses(n_features, dim, pool,
                                                                    layers)),
                       util::format_pow10(complexity::security_gain_log10(n_features, dim, pool,
                                                                          layers)),
                       util::format_bits(footprint.secure_key_bits)});
    }
    std::cout << table.to_string();
    return 0;
}

int usage(std::ostream& out, int code) {
    out << "hdlock_cli -- HDLock deployment toolkit (.hdlk bundles)\n"
           "usage: hdlock_cli <provision|audit|train|export|rotate|eval|attack|complexity> [--flags]\n"
           "see the header comment of tools/hdlock_cli.cpp for per-command flags\n";
    return code;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage(std::cerr, 2);
    const std::string command = argv[1];
    if (command == "--help" || command == "-h" || command == "help") return usage(std::cout, 0);
    try {
        const Args args(argc, argv, 2, cli::kEvalBooleanFlags);
        if (command == "provision") return cmd_provision(args);
        if (command == "audit") return cmd_audit(args);
        if (command == "train") return cmd_train(args);
        if (command == "export") return cmd_export(args);
        if (command == "rotate") return cmd_rotate(args);
        if (command == "eval") return cmd_eval(args);
        if (command == "attack") return cmd_attack(args);
        if (command == "complexity") return cmd_complexity(args);
        std::cerr << "unknown command: " << command << "\n";
        return usage(std::cerr, 2);
    } catch (const UsageError& error) {
        std::cerr << "usage error: " << error.what() << "\n";
        return usage(std::cerr, 2);
    } catch (const Error& error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
    } catch (const std::exception& error) {
        std::cerr << "internal error: " << error.what() << "\n";
        return 1;
    }
}
