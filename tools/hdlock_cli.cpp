/// \file hdlock_cli.cpp
/// Command-line front end over the library's serialized artifacts, so a
/// deployment can be provisioned, trained, evaluated and red-teamed without
/// writing C++.
///
/// Artifacts on disk (all via util/serialize.hpp):
///   store.bin    PublicStore        (public hypervector memory)
///   key.bin      LockKey            (tamper-proof half of the deployment)
///   mapping.bin  serialized ValueMapping (level -> slot)
///   model.hdc    HdcModel           disc.bin  MinMaxDiscretizer
///
/// Subcommands:
///   provision --dir D --features N [--dim D] [--levels M] [--layers L]
///             [--pool P] [--seed S]          create a deployment + audit it
///   audit     --dir D                        re-audit key vs. store
///   train     --dir D --data train.csv [--kind binary|nonbinary]
///             [--epochs E]                   fit model + discretizer
///   eval      --dir D --data test.csv        accuracy of the stored model
///   attack    --dir D --data train.csv --test test.csv
///                                            replay the Sec. 3.2 theft
///   complexity --features N [--dim D] [--pool P] [--layers L]
///                                            closed-form guess counts
///
/// Exit code 0 on success, 2 on usage errors, 1 on runtime failure.

#include <filesystem>
#include <iostream>
#include <map>
#include <optional>
#include <string>

#include "attack/ip_theft.hpp"
#include "attack/locked_theft.hpp"
#include "core/complexity.hpp"
#include "core/key_tools.hpp"
#include "core/locked_encoder.hpp"
#include "data/loaders.hpp"
#include "hdc/classifier.hpp"
#include "util/serialize.hpp"
#include "util/table.hpp"

namespace {

using namespace hdlock;
namespace fs = std::filesystem;

constexpr std::uint64_t kCliTieSeed = 0x7E11;

/// Minimal --flag=value / --flag value parser; flags are string-typed and
/// validated by the subcommand.
class Args {
public:
    Args(int argc, char** argv, int first) {
        for (int i = first; i < argc; ++i) {
            std::string arg = argv[i];
            if (!arg.starts_with("--")) throw ConfigError("unexpected argument: " + arg);
            const auto eq = arg.find('=');
            if (eq != std::string::npos) {
                values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
            } else if (i + 1 < argc) {
                values_[arg.substr(2)] = argv[++i];
            } else {
                throw ConfigError("flag needs a value: " + arg);
            }
        }
    }

    std::string require(const std::string& name) const {
        const auto found = values_.find(name);
        if (found == values_.end()) throw ConfigError("missing required flag --" + name);
        return found->second;
    }

    std::string get(const std::string& name, const std::string& fallback) const {
        const auto found = values_.find(name);
        return found == values_.end() ? fallback : found->second;
    }

    std::uint64_t get_u64(const std::string& name, std::uint64_t fallback) const {
        const auto found = values_.find(name);
        return found == values_.end() ? fallback : std::stoull(found->second);
    }

private:
    std::map<std::string, std::string> values_;
};

/// ValueMapping is a plain vector; wrap it for the save/load helpers.
struct MappingFile {
    ValueMapping mapping;

    void save(util::BinaryWriter& writer) const {
        writer.write_tag("VMAP");
        writer.write_u32(static_cast<std::uint32_t>(mapping.size()));
        for (const auto slot : mapping) writer.write_u32(slot);
    }
    static MappingFile load(util::BinaryReader& reader) {
        reader.expect_tag("VMAP");
        MappingFile file;
        file.mapping.resize(reader.read_u32());
        for (auto& slot : file.mapping) slot = reader.read_u32();
        return file;
    }
};

struct Paths {
    fs::path store, key, mapping, model, disc;

    explicit Paths(const fs::path& dir)
        : store(dir / "store.bin"),
          key(dir / "key.bin"),
          mapping(dir / "mapping.bin"),
          model(dir / "model.hdc"),
          disc(dir / "disc.bin") {}
};

std::shared_ptr<const LockedEncoder> load_encoder(const Paths& paths) {
    auto store = std::make_shared<const PublicStore>(util::load_file<PublicStore>(paths.store));
    auto key = util::load_file<LockKey>(paths.key);
    auto mapping = util::load_file<MappingFile>(paths.mapping).mapping;
    return std::make_shared<const LockedEncoder>(store, std::move(key), std::move(mapping),
                                                 kCliTieSeed);
}

hdc::ModelKind parse_kind(const std::string& kind) {
    if (kind == "binary") return hdc::ModelKind::binary;
    if (kind == "nonbinary" || kind == "non-binary") return hdc::ModelKind::non_binary;
    throw ConfigError("unknown --kind (use binary|nonbinary): " + kind);
}

int cmd_provision(const Args& args) {
    const fs::path dir = args.require("dir");
    fs::create_directories(dir);
    const Paths paths(dir);

    DeploymentConfig config;
    config.n_features = args.get_u64("features", 0);
    config.dim = args.get_u64("dim", 10000);
    config.n_levels = args.get_u64("levels", 16);
    config.n_layers = args.get_u64("layers", 2);
    config.pool_size = args.get_u64("pool", 0);
    config.seed = args.get_u64("seed", 1);
    config.tie_seed = kCliTieSeed;
    if (config.n_features == 0) throw ConfigError("--features is required and must be > 0");

    const Deployment deployment = provision(config);
    util::save_file(*deployment.store, paths.store);
    util::save_file(deployment.secure->key(), paths.key);
    util::save_file(MappingFile{deployment.secure->value_mapping()}, paths.mapping);

    const auto audit = audit_key(deployment.secure->key(), *deployment.store);
    std::cout << "provisioned " << dir.string() << " (N=" << config.n_features
              << ", D=" << config.dim << ", M=" << config.n_levels << ", L=" << config.n_layers
              << ", P=" << deployment.store->pool_size() << ")\n"
              << "key audit: " << audit.summary() << "\n"
              << "attack complexity: "
              << util::format_pow10(complexity::log10_guesses(
                     config.n_features, config.dim, deployment.store->pool_size(),
                     config.n_layers))
              << " guesses\n";
    return audit.ok() ? 0 : 1;
}

int cmd_audit(const Args& args) {
    const Paths paths{fs::path(args.require("dir"))};
    const auto store = util::load_file<PublicStore>(paths.store);
    const auto key = util::load_file<LockKey>(paths.key);
    const auto report = audit_key(key, store);
    std::cout << report.summary() << "\n";
    return report.ok() ? 0 : 1;
}

int cmd_train(const Args& args) {
    const Paths paths{fs::path(args.require("dir"))};
    const auto dataset = data::load_csv(args.require("data"));
    const auto encoder = load_encoder(paths);

    hdc::PipelineConfig pipeline;
    pipeline.train.kind = parse_kind(args.get("kind", "binary"));
    pipeline.train.retrain_epochs = static_cast<int>(args.get_u64("epochs", 10));
    const auto classifier = hdc::HdcClassifier::fit(dataset, encoder, pipeline);

    util::save_file(classifier.model(), paths.model);
    util::save_file(classifier.discretizer(), paths.disc);
    std::cout << "trained on " << dataset.n_samples() << " samples ("
              << classifier.model().epochs_run() << " retrain epochs); train accuracy "
              << util::format_fixed(classifier.evaluate(dataset), 4) << "\n";
    return 0;
}

int cmd_eval(const Args& args) {
    const Paths paths{fs::path(args.require("dir"))};
    const auto dataset = data::load_csv(args.require("data"));
    const auto encoder = load_encoder(paths);
    const auto model = util::load_file<hdc::HdcModel>(paths.model);
    const auto discretizer = util::load_file<hdc::MinMaxDiscretizer>(paths.disc);

    hdc::EncodedBatch batch;
    batch.labels = dataset.y;
    std::vector<int> levels(dataset.n_features());
    for (std::size_t s = 0; s < dataset.n_samples(); ++s) {
        discretizer.transform_row(dataset.X.row(s), levels);
        batch.non_binary.push_back(encoder->encode(levels));
        if (model.kind() == hdc::ModelKind::binary) {
            batch.binary.push_back(encoder->encode_binary(levels));
        }
    }
    std::cout << "accuracy on " << dataset.n_samples() << " samples: "
              << util::format_fixed(model.evaluate(batch), 4) << "\n";
    return 0;
}

/// Reassembles a Deployment (store + unsealed secure store + encoder) from
/// the on-disk artifacts, so the attack runs against the *stored* device.
Deployment load_deployment(const Paths& paths) {
    Deployment deployment;
    deployment.store =
        std::make_shared<const PublicStore>(util::load_file<PublicStore>(paths.store));
    auto key = util::load_file<LockKey>(paths.key);
    auto mapping = util::load_file<MappingFile>(paths.mapping).mapping;
    deployment.encoder = std::make_shared<const LockedEncoder>(deployment.store, key, mapping,
                                                               kCliTieSeed);
    deployment.secure = std::make_shared<SecureStore>(std::move(key), std::move(mapping));
    return deployment;
}

int cmd_attack(const Args& args) {
    const auto train = data::load_csv(args.require("data"));
    const auto test = data::load_csv(args.require("test"));
    const Paths paths{fs::path(args.require("dir"))};
    const auto deployment = load_deployment(paths);

    // The stored deployment tells us which experiment applies; both print
    // the corresponding Table-1-style row.
    if (deployment.secure->key().is_plain()) {
        attack::IpTheftConfig config;
        config.kind = parse_kind(args.get("kind", "binary"));
        config.seed = args.get_u64("seed", 1);
        const auto report = attack::steal_model(deployment, train, test, config);
        std::cout << "UNPROTECTED deployment: attack succeeded\n"
                  << "  original accuracy  " << util::format_fixed(report.original_accuracy, 4)
                  << "\n  recovered accuracy " << util::format_fixed(report.recovered_accuracy, 4)
                  << "\n  mapping recovered  "
                  << util::format_fixed(report.feature_mapping_accuracy, 4) << " (features), "
                  << util::format_fixed(report.value_mapping_accuracy, 4) << " (values)"
                  << "\n  reasoning time     " << util::format_fixed(report.reasoning_seconds, 3)
                  << " s, " << report.guesses << " guesses\n";
        return 0;
    }

    attack::LockedTheftConfig config;
    config.kind = parse_kind(args.get("kind", "binary"));
    config.seed = args.get_u64("seed", 1);
    const auto report = attack::steal_locked_model(deployment, train, test, config);
    std::cout << "HDLock deployment (L=" << report.n_layers << "): attack failed\n"
              << "  victim accuracy    " << util::format_fixed(report.original_accuracy, 4)
              << "\n  transfer accuracy  " << util::format_fixed(report.transfer_accuracy, 4)
              << " (chance " << util::format_fixed(report.chance_accuracy, 4) << ")"
              << "\n  FeaHVs recovered   " << util::format_fixed(report.feature_hv_recovery, 4)
              << "\n  required guesses   "
              << util::format_pow10(report.log10_guesses_required) << "\n";
    return 0;
}

int cmd_complexity(const Args& args) {
    const std::size_t n_features = args.get_u64("features", 784);
    const std::size_t dim = args.get_u64("dim", 10000);
    const std::size_t pool = args.get_u64("pool", n_features);

    util::TextTable table({"L", "guesses", "gain_over_plain", "secure_key_bits"});
    for (std::size_t layers = 0; layers <= args.get_u64("layers", 5); ++layers) {
        const auto footprint = complexity::footprint(n_features, dim, pool, layers, 16, 10);
        table.add_row({std::to_string(layers),
                       util::format_pow10(complexity::log10_guesses(n_features, dim, pool,
                                                                    layers)),
                       util::format_pow10(complexity::security_gain_log10(n_features, dim, pool,
                                                                          layers)),
                       util::format_bits(footprint.secure_key_bits)});
    }
    std::cout << table.to_string();
    return 0;
}

int usage(std::ostream& out, int code) {
    out << "hdlock_cli -- HDLock deployment toolkit\n"
           "usage: hdlock_cli <provision|audit|train|eval|attack|complexity> [--flags]\n"
           "see the header comment of tools/hdlock_cli.cpp for per-command flags\n";
    return code;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage(std::cerr, 2);
    const std::string command = argv[1];
    if (command == "--help" || command == "-h" || command == "help") return usage(std::cout, 0);
    try {
        const Args args(argc, argv, 2);
        if (command == "provision") return cmd_provision(args);
        if (command == "audit") return cmd_audit(args);
        if (command == "train") return cmd_train(args);
        if (command == "eval") return cmd_eval(args);
        if (command == "attack") return cmd_attack(args);
        if (command == "complexity") return cmd_complexity(args);
        std::cerr << "unknown command: " << command << "\n";
        return usage(std::cerr, 2);
    } catch (const Error& error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
    }
}
