/// \file hdlock_lint.cpp
/// CLI entry point for the key-confinement / layering checker.  All logic
/// lives in the lint library (lint.hpp) so the rules are unit-testable; see
/// `hdlock_lint --help` for usage and tools/lint/layers.toml for the policy.

#include <iostream>

#include "lint/lint.hpp"

int main(int argc, char** argv) {
    return hdlock::lint::run_cli(argc, argv, std::cout, std::cerr);
}
