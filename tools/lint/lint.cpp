#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

namespace hdlock::lint {

namespace fs = std::filesystem;

namespace {

// The in-source markers the scanner keys on.  Spelled as adjacent string
// literals so this translation unit never matches its own scan (the scanner
// looks at raw source text).
const std::string kSecretHeaderMarker = std::string("hdlock-lint: ") + "secret-header";
const std::string kDeviceBeginMarker = std::string("hdlock-lint: ") + "device-begin";
const std::string kDeviceEndMarker = std::string("hdlock-lint: ") + "device-end";
const std::string kAllowMarkerPrefix = std::string("hdlock-lint: ") + "allow(";
const std::string kAnnotationSecret = std::string("HDLOCK_") + "SECRET";
const std::string kAnnotationOwnerOnly = std::string("HDLOCK_") + "OWNER_ONLY";

std::string trim(const std::string& s) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
    return s.substr(b, e - b);
}

bool starts_with(const std::string& s, const std::string& prefix) {
    return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

// ---------------------------------------------------------------------------
// Manifest parsing (TOML subset: [sections], key = "string" | true | false |
// [ "array", ... ] with arrays allowed to span lines; '#' comments).
// ---------------------------------------------------------------------------

class ManifestParser {
public:
    ManifestParser(fs::path path) : path_(std::move(path)) {}

    Manifest parse() {
        std::ifstream in(path_);
        if (!in) throw ManifestError(path_.generic_string(), 0, "cannot open manifest");
        std::string line;
        while (std::getline(in, line)) {
            ++line_no_;
            consume_line(line);
        }
        if (in_array_) fail("unterminated array (missing ']')");
        finish_layer();
        validate();
        return std::move(manifest_);
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        throw ManifestError(path_.generic_string(), line_no_, what);
    }

    void consume_line(const std::string& raw) {
        std::string line = strip_comment(raw);
        if (in_array_) {
            array_accum_ += line;
            if (line.find(']') != std::string::npos) flush_array();
            return;
        }
        line = trim(line);
        if (line.empty()) return;
        if (line.front() == '[') {
            const auto close = line.find(']');
            if (close == std::string::npos || trim(line.substr(close + 1)).size() != 0) {
                fail("malformed section header");
            }
            enter_section(trim(line.substr(1, close - 1)));
            return;
        }
        const auto eq = line.find('=');
        if (eq == std::string::npos) fail("expected 'key = value'");
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (key.empty()) fail("empty key");
        if (value.empty()) fail("missing value for '" + key + "'");
        if (value.front() == '[') {
            if (value.find(']') != std::string::npos) {
                assign(key, parse_array(value));
            } else {
                in_array_ = true;
                array_key_ = key;
                array_accum_ = value;
                array_line_ = line_no_;
            }
            return;
        }
        assign_scalar(key, value);
    }

    static std::string strip_comment(const std::string& line) {
        // '#' starts a comment unless inside a quoted string.
        bool quoted = false;
        for (std::size_t i = 0; i < line.size(); ++i) {
            if (line[i] == '"') quoted = !quoted;
            if (line[i] == '#' && !quoted) return line.substr(0, i);
        }
        return line;
    }

    void flush_array() {
        in_array_ = false;
        const int saved = line_no_;
        line_no_ = array_line_;  // report array errors at the opening line
        assign(array_key_, parse_array(array_accum_));
        line_no_ = saved;
        array_accum_.clear();
    }

    std::vector<std::string> parse_array(const std::string& text) {
        const auto open = text.find('[');
        const auto close = text.rfind(']');
        if (open == std::string::npos || close == std::string::npos || close < open) {
            fail("malformed array");
        }
        if (trim(text.substr(close + 1)).size() != 0) fail("trailing content after ']'");
        std::vector<std::string> items;
        std::string body = text.substr(open + 1, close - open - 1);
        std::stringstream stream(body);
        std::string item;
        while (std::getline(stream, item, ',')) {
            item = trim(item);
            if (item.empty()) continue;  // tolerate trailing comma
            items.push_back(parse_string(item));
        }
        return items;
    }

    std::string parse_string(const std::string& value) {
        if (value.size() < 2 || value.front() != '"' || value.back() != '"') {
            fail("expected a double-quoted string, got '" + value + "'");
        }
        return value.substr(1, value.size() - 2);
    }

    void enter_section(const std::string& name) {
        finish_layer();
        if (name.empty()) fail("empty section name");
        if (starts_with(name, "layer.")) {
            const std::string layer_name = name.substr(std::string("layer.").size());
            if (layer_name.empty()) fail("layer section without a name");
            for (const auto& layer : manifest_.layers) {
                if (layer.name == layer_name) fail("duplicate layer '" + layer_name + "'");
            }
            current_layer_ = Layer{};
            current_layer_->name = layer_name;
            section_ = "layer";
            return;
        }
        if (name != "lint" && name != "secret" && name != "taint" && name != "allow" &&
            name != "concurrency" && name != "nondeterminism") {
            fail("unknown section [" + name + "]");
        }
        section_ = name;
    }

    void finish_layer() {
        if (current_layer_) {
            manifest_.layers.push_back(std::move(*current_layer_));
            current_layer_.reset();
        }
    }

    void assign(const std::string& key, std::vector<std::string> items) {
        if (section_ == "lint") {
            if (key == "include_dirs") {
                manifest_.include_dirs = std::move(items);
            } else if (key == "exclude") {
                manifest_.exclude = std::move(items);
            } else {
                fail("unknown key '" + key + "' in [lint]");
            }
        } else if (section_ == "layer") {
            if (key == "paths") {
                current_layer_->paths = std::move(items);
            } else if (key == "files") {
                current_layer_->files = std::move(items);
            } else if (key == "deps") {
                current_layer_->deps = std::move(items);
            } else {
                fail("unknown key '" + key + "' in [layer." + current_layer_->name + "]");
            }
        } else if (section_ == "secret") {
            if (key == "headers") {
                manifest_.secret_headers = std::move(items);
            } else if (key == "identifiers") {
                manifest_.secret_identifiers = std::move(items);
            } else {
                fail("unknown key '" + key + "' in [secret]");
            }
        } else if (section_ == "taint") {
            if (key == "files") {
                manifest_.taint_files = std::move(items);
            } else if (key == "region_files") {
                manifest_.taint_region_files = std::move(items);
            } else {
                fail("unknown key '" + key + "' in [taint]");
            }
        } else if (section_ == "allow") {
            if (key == "edges") {
                manifest_.allow_edges = std::move(items);
            } else {
                fail("unknown key '" + key + "' in [allow]");
            }
        } else if (section_ == "concurrency") {
            if (key == "raw_layers") {
                manifest_.concurrency_raw_layers = std::move(items);
            } else if (key == "raw_tokens") {
                manifest_.concurrency_raw_tokens = std::move(items);
            } else if (key == "raw_includes") {
                manifest_.concurrency_raw_includes = std::move(items);
            } else {
                fail("unknown key '" + key + "' in [concurrency]");
            }
        } else if (section_ == "nondeterminism") {
            if (key == "banned") {
                manifest_.nondeterminism_banned = std::move(items);
            } else {
                fail("unknown key '" + key + "' in [nondeterminism]");
            }
        } else {
            fail("key '" + key + "' outside any known section");
        }
    }

    void assign_scalar(const std::string& key, const std::string& value) {
        if (section_ == "layer" && (key == "device" || key == "deterministic")) {
            bool flag = false;
            if (value == "true") {
                flag = true;
            } else if (value != "false") {
                fail("'" + key + "' must be true or false");
            }
            (key == "device" ? current_layer_->device : current_layer_->deterministic) = flag;
            return;
        }
        // Every other key takes a string or an array; a bare scalar that is
        // not a quoted string is a syntax error worth naming.
        assign(key, {parse_string(value)});
    }

    void validate() {
        if (manifest_.layers.empty()) fail("manifest defines no layers");
        std::set<std::string> names;
        for (const auto& layer : manifest_.layers) names.insert(layer.name);
        for (const auto& layer : manifest_.layers) {
            for (const auto& dep : layer.deps) {
                if (names.count(dep) == 0) {
                    throw ManifestError(path_.generic_string(), 0,
                                        "layer '" + layer.name + "' depends on unknown layer '" +
                                            dep + "'");
                }
            }
            if (layer.paths.empty() && layer.files.empty()) {
                throw ManifestError(path_.generic_string(), 0,
                                    "layer '" + layer.name + "' lists no paths or files");
            }
        }
        for (const auto& edge : manifest_.allow_edges) {
            if (edge.find(" -> ") == std::string::npos) {
                throw ManifestError(path_.generic_string(), 0,
                                    "allow edge '" + edge + "' is not of the form 'from -> to'");
            }
        }
        for (const auto& layer_name : manifest_.concurrency_raw_layers) {
            if (names.count(layer_name) == 0) {
                throw ManifestError(path_.generic_string(), 0,
                                    "[concurrency] raw_layers names unknown layer '" +
                                        layer_name + "'");
            }
        }
    }

    fs::path path_;
    int line_no_ = 0;
    std::string section_;
    std::optional<Layer> current_layer_;
    bool in_array_ = false;
    std::string array_key_;
    std::string array_accum_;
    int array_line_ = 0;
    Manifest manifest_;
};

// ---------------------------------------------------------------------------
// Source scanning
// ---------------------------------------------------------------------------

struct IncludeEdge {
    std::string target;  // as written between the quotes
    int line = 0;
};

struct ScannedFile {
    std::string path;  // repo-relative, generic separators
    std::vector<IncludeEdge> includes;        // quoted includes (layer edges)
    std::vector<IncludeEdge> angle_includes;  // <...> includes (raw-include bans)
    bool secret_marker = false;      // file-level secret-header comment
    bool has_annotation = false;     // any HDLOCK_* confinement macro token
    // Stripped source lines (comments and string/char literal contents
    // blanked) for the token scans.
    std::vector<std::string> stripped_lines;
    // Per line: the rules an allow(<rule>) marker suppresses there.  A
    // marker on a comment-only line extends through the next code line, so
    // a justification can span several comment lines above the suppressed
    // statement.
    std::vector<std::set<std::string>> line_allowed;
    std::vector<bool> line_in_device_region;
    // allow(<rule>) markers with no justification text after ')'.
    std::vector<std::pair<int, std::string>> bare_suppressions;  // (line, rule)
};

bool is_word_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Blanks comment bodies and string/char literal contents, preserving line
/// structure, so taint matching never fires on prose or message text.
/// Tracks block comments across lines via `in_block_comment`.
std::string strip_code_line(const std::string& line, bool& in_block_comment) {
    std::string out;
    out.reserve(line.size());
    for (std::size_t i = 0; i < line.size(); ++i) {
        if (in_block_comment) {
            if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
                in_block_comment = false;
                ++i;
            }
            continue;
        }
        const char c = line[i];
        if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
        if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
            in_block_comment = true;
            ++i;
            continue;
        }
        if (c == '"' || c == '\'') {
            const char quote = c;
            out.push_back(quote);
            ++i;
            while (i < line.size()) {
                if (line[i] == '\\') {
                    i += 2;
                    continue;
                }
                if (line[i] == quote) break;
                ++i;
            }
            out.push_back(quote);
            continue;
        }
        out.push_back(c);
    }
    return out;
}

/// Every `hdlock-lint: allow(<rule>)` marker on the raw line, paired with
/// whether any justification text follows the closing parenthesis.
std::vector<std::pair<std::string, bool>> parse_allow_marks(const std::string& line) {
    std::vector<std::pair<std::string, bool>> marks;
    std::size_t pos = 0;
    while ((pos = line.find(kAllowMarkerPrefix, pos)) != std::string::npos) {
        const std::size_t open = pos + kAllowMarkerPrefix.size();
        const std::size_t close = line.find(')', open);
        if (close == std::string::npos) break;
        const std::string rule = trim(line.substr(open, close - open));
        const bool justified = !trim(line.substr(close + 1)).empty();
        if (!rule.empty()) marks.emplace_back(rule, justified);
        pos = close + 1;
    }
    return marks;
}

ScannedFile scan_file(const fs::path& full_path, const std::string& rel_path) {
    ScannedFile scanned;
    scanned.path = rel_path;
    std::ifstream in(full_path);
    std::string line;
    int line_no = 0;
    bool in_block_comment = false;
    bool in_device_region = false;
    // (line index, rule) of each justified allow marker; extension to the
    // following code line happens after the whole file is read.
    std::vector<std::pair<std::size_t, std::string>> allow_at;
    while (std::getline(in, line)) {
        ++line_no;
        // Markers live in comments: detect them on the raw line.
        if (line.find(kSecretHeaderMarker) != std::string::npos) scanned.secret_marker = true;
        if (line.find(kDeviceBeginMarker) != std::string::npos) in_device_region = true;
        if (line.find(kAnnotationSecret) != std::string::npos ||
            line.find(kAnnotationOwnerOnly) != std::string::npos) {
            scanned.has_annotation = true;
        }
        for (const auto& [rule, justified] : parse_allow_marks(line)) {
            if (justified) {
                allow_at.emplace_back(static_cast<std::size_t>(line_no - 1), rule);
            } else {
                scanned.bare_suppressions.emplace_back(line_no, rule);
            }
        }

        // Includes are parsed from the raw line (the stripped line blanks
        // the path); comment state still has to advance, so strip
        // afterwards regardless.
        std::size_t i = 0;
        while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])) != 0) ++i;
        if (!in_block_comment && i < line.size() && line[i] == '#') {
            std::size_t j = i + 1;
            while (j < line.size() && std::isspace(static_cast<unsigned char>(line[j])) != 0) ++j;
            if (line.compare(j, 7, "include") == 0) {
                const auto open = line.find('"', j + 7);
                if (open != std::string::npos) {
                    const auto close = line.find('"', open + 1);
                    if (close != std::string::npos && close > open + 1) {
                        scanned.includes.push_back(
                            IncludeEdge{line.substr(open + 1, close - open - 1), line_no});
                    }
                }
                const auto angle_open = line.find('<', j + 7);
                if (open == std::string::npos && angle_open != std::string::npos) {
                    const auto angle_close = line.find('>', angle_open + 1);
                    if (angle_close != std::string::npos && angle_close > angle_open + 1) {
                        scanned.angle_includes.push_back(IncludeEdge{
                            line.substr(angle_open + 1, angle_close - angle_open - 1), line_no});
                    }
                }
            }
        }

        scanned.stripped_lines.push_back(strip_code_line(line, in_block_comment));
        scanned.line_allowed.emplace_back();
        scanned.line_in_device_region.push_back(in_device_region);
        // device-end closes the region *after* its own line so the marker
        // comment itself can sit on the closing line of the region.
        if (line.find(kDeviceEndMarker) != std::string::npos) in_device_region = false;
    }

    // A marker covers its own line; from a comment-only line it extends
    // through every following comment/blank line (the rest of the
    // justification) up to and including the first code line.
    for (const auto& [index, rule] : allow_at) {
        scanned.line_allowed[index].insert(rule);
        if (!trim(scanned.stripped_lines[index]).empty()) continue;
        for (std::size_t j = index + 1; j < scanned.stripped_lines.size(); ++j) {
            scanned.line_allowed[j].insert(rule);
            if (!trim(scanned.stripped_lines[j]).empty()) break;
        }
    }
    return scanned;
}

// ---------------------------------------------------------------------------
// The checker
// ---------------------------------------------------------------------------

class Checker {
public:
    Checker(const Manifest& manifest, fs::path repo_root)
        : manifest_(manifest), root_(std::move(repo_root)) {}

    Report check() {
        discover_files();
        assign_layers();
        resolve_edges();
        check_layer_order();
        check_secret_reach();
        check_secret_taint();
        check_concurrency();
        check_nondeterminism();
        check_suppressions();
        std::sort(report_.diagnostics.begin(), report_.diagnostics.end(),
                  [](const Diagnostic& a, const Diagnostic& b) {
                      return std::tie(a.file, a.line, a.rule, a.message) <
                             std::tie(b.file, b.line, b.rule, b.message);
                  });
        return std::move(report_);
    }

private:
    static bool has_source_extension(const fs::path& p) {
        const std::string ext = p.extension().string();
        return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
    }

    bool excluded(const std::string& rel) const {
        for (const auto& prefix : manifest_.exclude) {
            if (starts_with(rel, prefix)) return true;
        }
        return false;
    }

    void discover_files() {
        std::vector<std::string> rel_paths;
        for (fs::recursive_directory_iterator it(root_), end; it != end; ++it) {
            const fs::path& p = it->path();
            const std::string rel = fs::relative(p, root_).generic_string();
            if (it->is_directory()) {
                if (excluded(rel + "/") || p.filename().string().rfind("build", 0) == 0 ||
                    p.filename() == ".git") {
                    it.disable_recursion_pending();
                }
                continue;
            }
            if (!it->is_regular_file() || !has_source_extension(p) || excluded(rel)) continue;
            rel_paths.push_back(rel);
        }
        std::sort(rel_paths.begin(), rel_paths.end());

        // Every file keeps its stripped lines: the concurrency and
        // nondeterminism token scans cover the whole tree, not just the
        // taint scopes.
        for (const auto& rel : rel_paths) {
            files_.emplace(rel, scan_file(root_ / rel, rel));
        }
        report_.files_scanned = files_.size();
    }

    /// Layer lookup used during discovery (before layer_of_ is built):
    /// exact `files` entry first, then longest `paths` prefix.
    const Layer* layer_for_path(const std::string& rel) const {
        for (const auto& layer : manifest_.layers) {
            if (std::find(layer.files.begin(), layer.files.end(), rel) != layer.files.end()) {
                return &layer;
            }
        }
        const Layer* best = nullptr;
        std::size_t best_len = 0;
        for (const auto& layer : manifest_.layers) {
            for (const auto& prefix : layer.paths) {
                if (starts_with(rel, prefix) && prefix.size() >= best_len) {
                    best = &layer;
                    best_len = prefix.size();
                }
            }
        }
        return best;
    }

    bool layer_is_device(const std::string& rel) const {
        const Layer* layer = layer_for_path(rel);
        return layer != nullptr && layer->device;
    }

    void assign_layers() {
        for (const auto& [rel, scanned] : files_) {
            const Layer* layer = layer_for_path(rel);
            if (layer == nullptr) {
                report_.diagnostics.push_back(
                    {rel, 0, "unassigned-file",
                     "file matches no layer in the manifest; add it to a layer's paths/files "
                     "(or to [lint] exclude)"});
                continue;
            }
            layer_of_[rel] = layer->name;
        }
        // Transitive closure of the allowed-deps relation.
        for (const auto& layer : manifest_.layers) {
            std::set<std::string>& closure = allowed_[layer.name];
            closure.insert(layer.name);
            std::deque<std::string> queue(layer.deps.begin(), layer.deps.end());
            while (!queue.empty()) {
                const std::string dep = queue.front();
                queue.pop_front();
                if (!closure.insert(dep).second) continue;
                for (const auto& other : manifest_.layers) {
                    if (other.name == dep) {
                        queue.insert(queue.end(), other.deps.begin(), other.deps.end());
                    }
                }
            }
        }
    }

    /// Resolves a quoted include against the includer's directory, then the
    /// manifest include_dirs.  Unresolvable targets (system headers, gtest)
    /// are simply not edges.
    std::optional<std::string> resolve(const std::string& from, const std::string& target) const {
        std::vector<std::string> candidates;
        const fs::path from_dir = fs::path(from).parent_path();
        candidates.push_back((from_dir / target).lexically_normal().generic_string());
        for (const auto& dir : manifest_.include_dirs) {
            candidates.push_back((fs::path(dir) / target).lexically_normal().generic_string());
        }
        for (auto& candidate : candidates) {
            if (starts_with(candidate, "./")) candidate = candidate.substr(2);
            if (files_.count(candidate) != 0) return candidate;
        }
        return std::nullopt;
    }

    void resolve_edges() {
        for (const auto& [rel, scanned] : files_) {
            for (const auto& include : scanned.includes) {
                if (auto target = resolve(rel, include.target)) {
                    edges_[rel].push_back({*target, include.line});
                    ++report_.edges_checked;
                }
            }
        }
    }

    bool edge_allowed(const std::string& from, const std::string& to) const {
        return std::find(manifest_.allow_edges.begin(), manifest_.allow_edges.end(),
                         from + " -> " + to) != manifest_.allow_edges.end();
    }

    void check_layer_order() {
        for (const auto& [from, targets] : edges_) {
            const auto from_layer = layer_of_.find(from);
            if (from_layer == layer_of_.end()) continue;
            const std::set<std::string>& allowed = allowed_.at(from_layer->second);
            for (const auto& [to, line] : targets) {
                const auto to_layer = layer_of_.find(to);
                if (to_layer == layer_of_.end()) continue;
                if (allowed.count(to_layer->second) != 0) continue;
                if (edge_allowed(from, to)) continue;
                report_.diagnostics.push_back(
                    {from, line, "layer-order",
                     "layer '" + from_layer->second + "' may not include '" + to + "' (layer '" +
                         to_layer->second + "'); allowed dependencies: " +
                         join(allowed) + " — grant an [allow] edge in the manifest if this is "
                         "deliberate"});
            }
        }
    }

    bool is_secret(const std::string& rel) const {
        if (std::find(manifest_.secret_headers.begin(), manifest_.secret_headers.end(), rel) !=
            manifest_.secret_headers.end()) {
            return true;
        }
        const auto it = files_.find(rel);
        return it != files_.end() && it->second.secret_marker;
    }

    void check_secret_reach() {
        // Manifest/annotation consistency first: a listed secret header
        // must carry an in-source confinement marking, so grep and the
        // manifest can never silently disagree.
        for (const auto& header : manifest_.secret_headers) {
            const auto it = files_.find(header);
            if (it == files_.end()) {
                report_.diagnostics.push_back(
                    {header, 0, "unmarked-secret",
                     "listed under [secret] headers but not found in the scan"});
                continue;
            }
            if (!it->second.secret_marker && !it->second.has_annotation) {
                report_.diagnostics.push_back(
                    {header, 0, "unmarked-secret",
                     "listed under [secret] headers but carries neither the secret-header "
                     "marker comment nor a confinement annotation macro"});
            }
        }

        for (const auto& [rel, layer_name] : layer_of_) {
            const Layer* layer = layer_for_path(rel);
            if (layer == nullptr || !layer->device) continue;
            walk_from_device_file(rel);
        }
    }

    void walk_from_device_file(const std::string& origin) {
        // BFS with parent tracking so the diagnostic can print the chain.
        std::map<std::string, std::string> parent;
        std::map<std::string, int> via_line;
        std::deque<std::string> queue{origin};
        parent[origin] = "";
        while (!queue.empty()) {
            const std::string current = queue.front();
            queue.pop_front();
            const auto edges = edges_.find(current);
            if (edges == edges_.end()) continue;
            for (const auto& [next, line] : edges->second) {
                if (parent.count(next) != 0) continue;
                if (edge_allowed(current, next)) continue;
                parent[next] = current;
                via_line[next] = line;
                if (is_secret(next)) {
                    report_secret_reach(origin, next, parent, via_line);
                    continue;  // keep walking: report every distinct header
                }
                queue.push_back(next);
            }
        }
    }

    void report_secret_reach(const std::string& origin, const std::string& hit,
                             const std::map<std::string, std::string>& parent,
                             const std::map<std::string, int>& via_line) {
        std::vector<std::string> chain{hit};
        std::string cursor = hit;
        while (parent.at(cursor) != "") {
            cursor = parent.at(cursor);
            chain.push_back(cursor);
        }
        std::reverse(chain.begin(), chain.end());  // origin ... hit
        std::string rendered = chain.front();
        for (std::size_t i = 1; i < chain.size(); ++i) rendered += " -> " + chain[i];
        // Anchor the diagnostic at the origin's include that starts the
        // chain: that is the edge the author can actually cut.
        const int line = via_line.at(chain.at(1));
        report_.diagnostics.push_back(
            {origin, line, "secret-reach",
             "device-layer translation unit reaches secret header '" + hit + "' via " + rendered});
    }

    void check_secret_taint() {
        const std::set<std::string> region_files(manifest_.taint_region_files.begin(),
                                                 manifest_.taint_region_files.end());
        for (const auto& [rel, scanned] : files_) {
            const bool whole_file =
                layer_is_device(rel) ||
                std::find(manifest_.taint_files.begin(), manifest_.taint_files.end(), rel) !=
                    manifest_.taint_files.end();
            const bool regions_only = !whole_file && region_files.count(rel) != 0;
            if (!whole_file && !regions_only) continue;
            for (std::size_t i = 0; i < scanned.stripped_lines.size(); ++i) {
                if (regions_only && !scanned.line_in_device_region[i]) continue;
                if (scanned.line_allowed[i].count("secret-taint") != 0) continue;
                for (const auto& identifier : manifest_.secret_identifiers) {
                    if (!contains_word(scanned.stripped_lines[i], identifier)) continue;
                    report_.diagnostics.push_back(
                        {rel, static_cast<int>(i + 1), "secret-taint",
                         "secret-marked identifier '" + identifier + "' in " +
                             (regions_only ? "a device serialization region"
                                           : "a device/report translation unit")});
                }
            }
        }
    }

    /// Token scan for the concurrency/nondeterminism rules.  The character
    /// before the match must not be an identifier character (so `steady_clock`
    /// does not fire inside `my_steady_clock`, but does after `std::chrono::`).
    /// A token ending in '(' is a call form and needs no right boundary;
    /// otherwise the character after must not be an identifier character
    /// (`std::thread` still fires in `std::thread::id`).
    static bool contains_token(const std::string& line, const std::string& token) {
        const bool call_form = !token.empty() && token.back() == '(';
        std::size_t pos = 0;
        while ((pos = line.find(token, pos)) != std::string::npos) {
            const bool left_ok = pos == 0 || !is_word_char(line[pos - 1]);
            const std::size_t end = pos + token.size();
            const bool right_ok = call_form || end >= line.size() || !is_word_char(line[end]);
            if (left_ok && right_ok) return true;
            ++pos;
        }
        return false;
    }

    bool line_allows(const ScannedFile& scanned, std::size_t index, const char* rule) const {
        return scanned.line_allowed[index].count(rule) != 0;
    }

    void check_concurrency() {
        const std::set<std::string> raw_layers(manifest_.concurrency_raw_layers.begin(),
                                               manifest_.concurrency_raw_layers.end());
        const std::set<std::string> raw_includes(manifest_.concurrency_raw_includes.begin(),
                                                 manifest_.concurrency_raw_includes.end());
        // Member-call shapes of the banned operations.  manual-lock and
        // thread-detach apply in *every* layer (including the raw layers):
        // even the wrapper implementations justify their .lock() calls.
        const std::vector<std::string> manual_lock = {std::string(".") + "lock(",
                                                      std::string("->") + "lock(",
                                                      std::string(".") + "unlock(",
                                                      std::string("->") + "unlock("};
        const std::vector<std::string> detach = {std::string(".") + "detach(",
                                                 std::string("->") + "detach("};
        for (const auto& [rel, scanned] : files_) {
            const auto layer_it = layer_of_.find(rel);
            const bool raw_ok =
                layer_it != layer_of_.end() && raw_layers.count(layer_it->second) != 0;
            for (std::size_t i = 0; i < scanned.stripped_lines.size(); ++i) {
                const std::string& line = scanned.stripped_lines[i];
                if (!raw_ok && !line_allows(scanned, i, "raw-sync-primitive")) {
                    for (const auto& token : manifest_.concurrency_raw_tokens) {
                        if (!contains_token(line, token)) continue;
                        report_.diagnostics.push_back(
                            {rel, static_cast<int>(i + 1), "raw-sync-primitive",
                             "raw '" + token + "' outside the " + join(raw_layers) +
                                 " layer(s); lock through the annotated util::Mutex/"
                                 "MutexLock/CondVar/Thread wrappers (util/sync.hpp) so "
                                 "-Wthread-safety sees it"});
                    }
                }
                if (!line_allows(scanned, i, "manual-lock")) {
                    for (const auto& token : manual_lock) {
                        if (line.find(token) == std::string::npos) continue;
                        report_.diagnostics.push_back(
                            {rel, static_cast<int>(i + 1), "manual-lock",
                             "bare '" + token + ")' call; acquire locks through an RAII "
                                 "scope (util::MutexLock) — manual lock/unlock pairs leak "
                                 "on exceptions and are invisible to -Wthread-safety"});
                        break;
                    }
                }
                if (!line_allows(scanned, i, "thread-detach")) {
                    for (const auto& token : detach) {
                        if (line.find(token) == std::string::npos) continue;
                        report_.diagnostics.push_back(
                            {rel, static_cast<int>(i + 1), "thread-detach",
                             "thread detach; every thread in this repo joins (util::Thread "
                                 "has no detach) — a detached thread outliving its captures "
                                 "is undiagnosable"});
                        break;
                    }
                }
            }
            if (raw_ok) continue;
            for (const auto& [target, line] : scanned.angle_includes) {
                if (raw_includes.count(target) == 0) continue;
                if (line_allows(scanned, static_cast<std::size_t>(line - 1),
                                "raw-sync-primitive")) {
                    continue;
                }
                report_.diagnostics.push_back(
                    {rel, line, "raw-sync-primitive",
                     "#include <" + target + "> outside the " + join(raw_layers) +
                         " layer(s); include \"util/sync.hpp\" instead"});
            }
        }
    }

    void check_nondeterminism() {
        std::set<std::string> deterministic_layers;
        for (const auto& layer : manifest_.layers) {
            if (layer.deterministic) deterministic_layers.insert(layer.name);
        }
        for (const auto& [rel, scanned] : files_) {
            const auto layer_it = layer_of_.find(rel);
            if (layer_it == layer_of_.end() ||
                deterministic_layers.count(layer_it->second) == 0) {
                continue;
            }
            for (std::size_t i = 0; i < scanned.stripped_lines.size(); ++i) {
                if (line_allows(scanned, i, "nondeterminism")) continue;
                for (const auto& token : manifest_.nondeterminism_banned) {
                    if (!contains_token(scanned.stripped_lines[i], token)) continue;
                    report_.diagnostics.push_back(
                        {rel, static_cast<int>(i + 1), "nondeterminism",
                         "nondeterminism source '" + token + "' in deterministic layer '" +
                             layer_it->second + "' — outputs here are byte-compared in CI; "
                             "thread seeded util:: RNG through instead, or mark a genuine "
                             "timing context with a justified allow(nondeterminism)"});
                }
            }
        }
    }

    void check_suppressions() {
        for (const auto& [rel, scanned] : files_) {
            for (const auto& [line, rule] : scanned.bare_suppressions) {
                report_.diagnostics.push_back(
                    {rel, line, "unjustified-suppression",
                     "allow(" + rule + ") without a justification — state why after the "
                         "closing parenthesis"});
            }
        }
    }

    static bool contains_word(const std::string& line, const std::string& word) {
        std::size_t pos = 0;
        while ((pos = line.find(word, pos)) != std::string::npos) {
            const bool left_ok = pos == 0 || !is_word_char(line[pos - 1]);
            const std::size_t end = pos + word.size();
            const bool right_ok = end >= line.size() || !is_word_char(line[end]);
            if (left_ok && right_ok) return true;
            pos = end;
        }
        return false;
    }

    static std::string join(const std::set<std::string>& items) {
        std::string out;
        for (const auto& item : items) {
            if (!out.empty()) out += ", ";
            out += item;
        }
        return out;
    }

    const Manifest& manifest_;
    fs::path root_;
    std::map<std::string, ScannedFile> files_;
    std::map<std::string, std::string> layer_of_;
    std::map<std::string, std::set<std::string>> allowed_;
    std::map<std::string, std::vector<std::pair<std::string, int>>> edges_;
    Report report_;
};

// ---------------------------------------------------------------------------
// JSON report rendering (--json)
// ---------------------------------------------------------------------------

std::string json_escape(const std::string& text) {
    std::string out;
    out.reserve(text.size() + 8);
    for (const char c : text) {
        switch (c) {
            case '"':
                out += "\\\"";
                break;
            case '\\':
                out += "\\\\";
                break;
            case '\n':
                out += "\\n";
                break;
            case '\t':
                out += "\\t";
                break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buffer[8];
                    std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
                    out += buffer;
                } else {
                    out.push_back(c);
                }
        }
    }
    return out;
}

std::string report_json(const Report& report) {
    std::string out = "{\n";
    out += "  \"tool\": \"hdlock_lint\",\n";
    out += "  \"files_scanned\": " + std::to_string(report.files_scanned) + ",\n";
    out += "  \"edges_checked\": " + std::to_string(report.edges_checked) + ",\n";
    out += std::string("  \"clean\": ") + (report.clean() ? "true" : "false") + ",\n";
    out += "  \"diagnostics\": [";
    for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
        const Diagnostic& d = report.diagnostics[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"file\": \"" + json_escape(d.file) + "\", \"line\": " +
               std::to_string(d.line) + ", \"rule\": \"" + json_escape(d.rule) +
               "\", \"message\": \"" + json_escape(d.message) + "\"}";
    }
    out += report.diagnostics.empty() ? "]\n" : "\n  ]\n";
    out += "}";
    return out;
}

}  // namespace

Manifest parse_manifest(const fs::path& path) { return ManifestParser(path).parse(); }

Report run(const Manifest& manifest, const fs::path& repo_root) {
    return Checker(manifest, repo_root).check();
}

int run_cli(int argc, const char* const* argv, std::ostream& out, std::ostream& err) {
    fs::path root = fs::current_path();
    fs::path manifest_path;
    bool verbose = false;
    bool json_to_out = false;
    fs::path json_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::optional<std::string> {
            if (i + 1 >= argc) return std::nullopt;
            return std::string(argv[++i]);
        };
        if (arg == "--help" || arg == "-h") {
            out << "usage: hdlock_lint [--root DIR] [--manifest FILE] [--verbose] "
                   "[--json[=PATH]]\n"
                   "Checks layer ordering, key confinement (secret-reach/taint), concurrency\n"
                   "discipline (raw-sync-primitive, manual-lock, thread-detach) and\n"
                   "deterministic-layer rules against the layer manifest (default:\n"
                   "<root>/tools/lint/layers.toml).\n"
                   "--json prints a machine-readable report instead of text; --json=PATH\n"
                   "keeps the text output and writes the JSON report to PATH.\n"
                   "Exit codes: 0 clean, 1 violations, 2 usage/manifest errors.\n";
            return 0;
        }
        if (arg == "--json") {
            json_to_out = true;
            continue;
        }
        if (starts_with(arg, "--json=")) {
            json_path = arg.substr(std::string("--json=").size());
            if (json_path.empty()) {
                err << "hdlock_lint: --json= needs a file path\n";
                return 2;
            }
            continue;
        }
        if (arg == "--root") {
            const auto value = next();
            if (!value) {
                err << "hdlock_lint: --root needs a directory\n";
                return 2;
            }
            root = *value;
        } else if (arg == "--manifest") {
            const auto value = next();
            if (!value) {
                err << "hdlock_lint: --manifest needs a file\n";
                return 2;
            }
            manifest_path = *value;
        } else if (arg == "--verbose") {
            verbose = true;
        } else {
            err << "hdlock_lint: unknown argument '" << arg << "'\n";
            return 2;
        }
    }
    if (manifest_path.empty()) {
        manifest_path = root / "tools" / "lint" / "layers.toml";
        if (!fs::exists(manifest_path)) manifest_path = root / "layers.toml";
    }

    try {
        const Manifest manifest = parse_manifest(manifest_path);
        const Report report = run(manifest, root);
        if (json_to_out) {
            out << report_json(report) << '\n';
        } else {
            for (const auto& diagnostic : report.diagnostics) {
                out << diagnostic.file << ':' << diagnostic.line << ": [" << diagnostic.rule
                    << "] " << diagnostic.message << '\n';
            }
            if (verbose || !report.clean()) {
                out << "hdlock_lint: " << report.files_scanned << " files, "
                    << report.edges_checked << " include edges, " << report.diagnostics.size()
                    << " violation" << (report.diagnostics.size() == 1 ? "" : "s") << '\n';
            }
        }
        if (!json_path.empty()) {
            std::ofstream json_out(json_path);
            json_out << report_json(report) << '\n';
            if (!json_out) {
                err << "hdlock_lint: cannot write JSON report to '"
                    << json_path.generic_string() << "'\n";
                return 2;
            }
        }
        return report.clean() ? 0 : 1;
    } catch (const ManifestError& error) {
        err << error.file() << ':' << error.line() << ": error: " << error.what() << '\n';
        return 2;
    } catch (const std::exception& error) {
        err << "hdlock_lint: " << error.what() << '\n';
        return 2;
    }
}

}  // namespace hdlock::lint
