#pragma once

/// \file lint.hpp
/// hdlock_lint: the key-confinement and layering checker.
///
/// A deliberately small static analysis (plain C++17, no libclang): it
/// parses the repo's quoted `#include` graph against a committed layer
/// manifest (tools/lint/layers.toml) and proves three properties on every
/// commit:
///
///   layer-order    every include edge respects the layer DAG
///                  (util -> hdc -> core -> api-device -> api-owner ->
///                  attack/eval/tools/...)
///   secret-reach   no device-layer translation unit reaches a
///                  secret-annotated header, directly or transitively
///   secret-taint   no secret-marked identifier appears in device-side
///                  code, device serialization regions, or eval JSON
///                  output paths
///
/// plus the concurrency/determinism discipline rules (riding the same layer
/// manifest):
///
///   raw-sync-primitive  raw std sync/thread primitives (std::mutex,
///                       std::condition_variable, std::thread, ...) and
///                       their angle includes outside the [concurrency]
///                       raw_layers — everything else locks through the
///                       annotated util::Mutex/MutexLock/CondVar/Thread
///                       wrappers so -Wthread-safety sees it
///   manual-lock         bare .lock()/.unlock() calls anywhere; locking is
///                       RAII-scoped only
///   thread-detach       .detach() anywhere; every thread joins
///   nondeterminism      banned nondeterminism sources (rand, clocks,
///                       std::random_device, ...) inside layers marked
///                       `deterministic = true`
///
/// Any rule can be suppressed on a specific line with a
/// `hdlock-lint: allow(<rule>)` comment, but only with a justification text
/// after the closing parenthesis — a bare suppression is itself reported
/// (unjustified-suppression).
///
/// The checker is a library (this header + lint.cpp) so its rules are
/// themselves regression-tested against fixture trees in
/// tests/lint/fixtures/; tools/lint/hdlock_lint.cpp is the thin CLI that CI
/// runs as a hard gate.
///
/// Exit-code contract (run_cli): 0 clean, 1 violations found, 2 usage or
/// manifest errors.

#include <cstddef>
#include <filesystem>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace hdlock::lint {

/// One finding, formatted by the CLI as `file:line: [rule] message`.
struct Diagnostic {
    std::string file;  ///< repo-root-relative path (generic '/' separators)
    int line = 0;      ///< 1-based; 0 when the finding is file-level
    /// layer-order | secret-reach | secret-taint | unmarked-secret |
    /// unassigned-file | raw-sync-primitive | manual-lock | thread-detach |
    /// nondeterminism | unjustified-suppression
    std::string rule;
    std::string message;
};

/// Manifest (or usage) failure: maps to exit code 2.
class ManifestError : public std::runtime_error {
public:
    ManifestError(std::string file, int line, const std::string& what)
        : std::runtime_error(what), file_(std::move(file)), line_(line) {}

    const std::string& file() const noexcept { return file_; }
    int line() const noexcept { return line_; }

private:
    std::string file_;
    int line_ = 0;
};

/// One layer of the manifest's DAG.  A file belongs to the first layer that
/// lists it under `files`, else to the layer with the longest matching
/// `paths` prefix.  `deps` name the layers this one may include from
/// (transitively closed by the checker; self-edges are always allowed).
struct Layer {
    std::string name;
    std::vector<std::string> paths;
    std::vector<std::string> files;
    std::vector<std::string> deps;
    /// Device layers form the roots of the secret-reach walk and are
    /// whole-file secret-taint scopes: this is the code that ships.
    bool device = false;
    /// Deterministic layers must not call the [nondeterminism] banned
    /// sources (clocks, rand, ...): their outputs are byte-compared in CI.
    bool deterministic = false;
};

struct Manifest {
    /// Directories (repo-relative) against which quoted includes resolve,
    /// in order; the includer's own directory is always tried first.
    std::vector<std::string> include_dirs;
    /// Path prefixes excluded from the scan (build trees, lint fixtures).
    std::vector<std::string> exclude;
    std::vector<Layer> layers;

    /// Headers holding key material (in addition to files carrying the
    /// in-source secret-header marker).  Every listed header must carry a
    /// confinement marker, or the checker reports `unmarked-secret`.
    std::vector<std::string> secret_headers;
    /// Identifiers that taint a device/serialization/report context.
    std::vector<std::string> secret_identifiers;

    /// Extra whole-file taint scopes (e.g. eval JSON writers).
    std::vector<std::string> taint_files;
    /// Files scanned only between device-begin/device-end marker comments
    /// (e.g. the device half of a mixed owner/device translation unit).
    std::vector<std::string> taint_region_files;

    /// Explicitly granted include edges, each "from -> to" (repo-relative).
    std::vector<std::string> allow_edges;

    /// [concurrency] — the raw-sync-primitive funnel.  Layers in
    /// `raw_layers` (normally just util, where the annotated wrappers live)
    /// may use the raw std primitives; everywhere else any `raw_tokens`
    /// token or `raw_includes` angle include is a violation.
    std::vector<std::string> concurrency_raw_layers;
    std::vector<std::string> concurrency_raw_tokens;
    std::vector<std::string> concurrency_raw_includes;

    /// [nondeterminism] — tokens banned inside `deterministic = true`
    /// layers.  A trailing '(' restricts the match to call syntax (so
    /// `time(` flags the libc call but not `std::time_t`).
    std::vector<std::string> nondeterminism_banned;
};

/// Parses the TOML-subset manifest (sections, string/bool scalars, string
/// arrays; see tools/lint/layers.toml for the grammar by example).
/// Throws ManifestError on syntax or consistency problems.
Manifest parse_manifest(const std::filesystem::path& path);

struct Report {
    std::vector<Diagnostic> diagnostics;  ///< sorted by (file, line, rule)
    std::size_t files_scanned = 0;
    std::size_t edges_checked = 0;

    bool clean() const noexcept { return diagnostics.empty(); }
};

/// Scans `repo_root` and checks every rule.  Throws ManifestError only for
/// manifest-level inconsistencies discovered late (e.g. a dep naming an
/// unknown layer); everything else is a Diagnostic.
Report run(const Manifest& manifest, const std::filesystem::path& repo_root);

/// The CLI:
/// `hdlock_lint [--root DIR] [--manifest FILE] [--verbose] [--json[=PATH]]`.
/// Prints diagnostics to `out`, usage/manifest errors to `err`; returns the
/// process exit code (0 clean / 1 violations / 2 errors).  `--json` replaces
/// the text output with a machine-readable report on `out`; `--json=PATH`
/// additionally keeps the text output and writes the JSON report to PATH
/// (the CI artifact form).
int run_cli(int argc, const char* const* argv, std::ostream& out, std::ostream& err);

}  // namespace hdlock::lint
