/// \file bench_table1.cpp
/// Compatibility wrapper over eval scenario "table1": the reasoning attack
/// on unprotected HDC models across the five benchmarks — original vs.
/// reconstructed accuracy plus reasoning cost (the IP leaks completely;
/// cost is ordered by the N^2 guess count).  The experiment lives in
/// src/eval/scenarios/scenario_table1.cpp.
///
/// Paper rows (Python, i7-3.60GHz): non-binary acc 0.8176/0.8385/0.9390/
/// 0.8839/0.8426 recovered within +-0.005; reasoning 4057.59/1404.33/
/// 7388.32/1649.81/0.85 s; binary similar with times 4284.27/1674.99/
/// 9100.14/2750.30/5.89 s.

#include "common.hpp"

int main(int argc, char** argv) {
    return hdlock::bench::scenario_bench_main(
        argc, argv, "table1",
        "Table 1: reasoning time and reconstructed-model accuracy, five benchmarks");
}
