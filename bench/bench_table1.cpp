/// \file bench_table1.cpp
/// Reproduces Table 1: the reasoning attack on unprotected HDC models across
/// the five benchmarks — original vs. reconstructed (stolen) accuracy plus
/// the reasoning time, for non-binary and binary models.
///
/// The datasets are the synthetic stand-ins of data/synthetic.hpp (same N,
/// C, M as the real corpora; see DESIGN.md §2).  Absolute times differ from
/// the paper's Python-on-i7 numbers by construction; the claims that carry
/// over are: (i) the recovered accuracy matches the original (the IP leaks
/// completely), and (ii) reasoning cost is ordered by the N^2 guess count,
/// with PAMAP (N = 75) orders of magnitude cheaper than the rest.
///
/// Default D = 10,000 as in the paper; --quick drops to 2,048 and subsamples
/// the training sets.

#include <iostream>

#include "api/api.hpp"
#include "attack/ip_theft.hpp"
#include "common.hpp"
#include "data/synthetic.hpp"
#include "util/table.hpp"

namespace {

using namespace hdlock;

data::SyntheticBenchmark scaled_benchmark(data::SyntheticSpec spec, bool quick) {
    if (quick) {
        spec.n_train = std::min<std::size_t>(spec.n_train, 400);
        spec.n_test = std::min<std::size_t>(spec.n_test, 150);
    }
    return data::make_benchmark(spec);
}

}  // namespace

int main(int argc, char** argv) {
    const auto args = hdlock::bench::parse_args(
        argc, argv, "Table 1: reasoning time and reconstructed-model accuracy, five benchmarks");

    std::cout << "Table 1 reproduction -- IP theft on unprotected HDC models (D="
              << (args.quick ? 2048 : 10000) << ")\n\n";

    for (const auto kind : {hdc::ModelKind::non_binary, hdc::ModelKind::binary}) {
        util::TextTable table({"benchmark", "original_acc", "recovered_acc", "value_map_acc",
                               "feature_map_acc", "reasoning_s", "guesses", "oracle_queries"});
        for (const auto& spec : data::paper_benchmarks()) {
            const auto benchmark = scaled_benchmark(spec, args.quick);

            attack::IpTheftConfig config;
            config.kind = kind;
            config.dim = args.quick ? 2048 : 10000;
            config.n_levels = spec.n_levels;
            config.retrain_epochs = args.quick ? 5 : 10;
            config.seed = args.seed;

            // The victim deployment comes from the api facade (same
            // provisioning steal_model used to do internally); the attack
            // then runs against its Deployment bridge.
            DeploymentConfig victim;
            victim.dim = config.dim;
            victim.n_features = benchmark.train.n_features();
            victim.n_levels = config.n_levels;
            victim.n_layers = 0;  // the vulnerable baseline of Sec. 3
            victim.seed = config.seed;
            const api::Owner owner = api::Owner::provision(victim);

            const auto report =
                attack::steal_model(owner.deployment(), benchmark.train, benchmark.test, config);
            table.add_row({spec.name, util::format_fixed(report.original_accuracy, 4),
                           util::format_fixed(report.recovered_accuracy, 4),
                           util::format_fixed(report.value_mapping_accuracy, 4),
                           util::format_fixed(report.feature_mapping_accuracy, 4),
                           util::format_fixed(report.reasoning_seconds, 3),
                           std::to_string(report.guesses),
                           std::to_string(report.oracle_queries)});
        }
        hdlock::bench::emit(args,
                            kind == hdc::ModelKind::non_binary ? "non-binary HDC model"
                                                               : "binary HDC model",
                            table);
    }

    std::cout << "paper rows (Python, i7-3.60GHz): non-binary acc 0.8176/0.8385/0.9390/0.8839/"
                 "0.8426 recovered within +-0.005; reasoning 4057.59/1404.33/7388.32/1649.81/"
                 "0.85 s; binary similar with times 4284.27/1674.99/9100.14/2750.30/5.89 s\n";
    return 0;
}
