#pragma once

/// \file lock_sweep_common.hpp
/// Shared driver for the Fig. 5 / Fig. 6 security-validation benches.
///
/// Both figures run the same experiment — attack one locked FeaHV at MNIST
/// scale (N = P = 784, D = 10,000, L = 2) with three of the four sub-key
/// parameters {k_11, index(B_11), k_12, index(B_12)} known and sweep the
/// last (Sec. 4.2, Eq. 11-13) — and differ only in the oracle (binary vs.
/// non-binary) and the plotted criterion (Hamming distance vs. cosine).

#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "attack/lock_attack.hpp"
#include "common.hpp"
#include "core/locked_encoder.hpp"
#include "util/table.hpp"

namespace hdlock::bench {

struct SweepCase {
    std::string label;  ///< the paper's subplot label, e.g. "(a) k_{1,1}"
    std::size_t layer = 0;
    attack::LockParameter parameter = attack::LockParameter::rotation;
};

inline std::vector<SweepCase> paper_sweep_cases() {
    return {
        {"(a) k_{1,1}", 0, attack::LockParameter::rotation},
        {"(b) index(B_{1,1})", 0, attack::LockParameter::base_index},
        {"(c) k_{1,2}", 1, attack::LockParameter::rotation},
        {"(d) index(B_{1,2})", 1, attack::LockParameter::base_index},
    };
}

/// Runs the four sweeps and prints one summary row per subplot plus an
/// optional full-curve dump.  `cosine_view` renders scores as the cosine
/// similarity the paper plots in Fig. 6 (1 = correct) instead of the
/// distance-like score (0 = correct).
inline int run_lock_sweep_bench(int argc, char** argv, bool binary_oracle, bool cosine_view,
                                std::string_view description) {
    const auto args = parse_args(argc, argv, description);

    DeploymentConfig config;
    config.dim = args.quick ? 1024 : 10000;
    config.n_features = args.quick ? 64 : 784;
    config.pool_size = config.n_features;  // P = N, the paper's footnote 2
    config.n_levels = 16;
    config.n_layers = 2;
    config.seed = args.seed;
    const Deployment deployment = provision(config);
    const auto& key = deployment.secure->key();
    const auto& level_to_slot = deployment.secure->value_mapping();

    std::cout << description << "\n(N=P=" << config.n_features << ", D=" << config.dim
              << ", L=2; sweeping one parameter with the other three known)\n\n";

    const auto render = [cosine_view](double score) {
        return util::format_fixed(cosine_view ? 1.0 - score : score, 5);
    };

    util::TextTable table({"subplot", "domain", "correct_value", "best_guess", "correct_score",
                           "runner_up_score", "|I|", "attack_succeeds"});
    std::vector<attack::LockSweepResult> sweeps;
    for (const auto& sweep_case : paper_sweep_cases()) {
        attack::LockSweepConfig sweep_config;
        sweep_config.feature = 0;
        sweep_config.layer = sweep_case.layer;
        sweep_config.parameter = sweep_case.parameter;
        sweep_config.binary_oracle = binary_oracle;

        const attack::EncodingOracle oracle(deployment.encoder);
        const auto result = attack::sweep_lock_parameter(*deployment.store, oracle, key,
                                                         level_to_slot, sweep_config);
        const auto& truth = key.entry(0, sweep_case.layer);
        const std::size_t correct_value = sweep_case.parameter ==
                                                  attack::LockParameter::rotation
                                              ? truth.rotation
                                              : truth.base_index;
        const bool domain_is_rotation = sweep_case.parameter == attack::LockParameter::rotation;
        table.add_row({sweep_case.label,
                       domain_is_rotation ? "k in [0," + std::to_string(config.dim) + ")"
                                          : "B in [0," + std::to_string(config.n_features) + ")",
                       std::to_string(correct_value), std::to_string(result.best_guess),
                       render(result.scores[correct_value]), render(result.runner_up_score),
                       std::to_string(result.deciding_positions),
                       result.best_guess == correct_value ? "yes" : "no"});
        sweeps.push_back(result);
    }
    emit(args,
         cosine_view ? "sweep summary (paper: correct guess cosine = 1, wrong ~0)"
                     : "sweep summary (paper: correct guess clearly lowest, wrong ~0.5; the "
                       "correct-guess floor is sign(0) tie noise on I)",
         table);

    // The per-guess series behind the four subplots (subsampled in text mode).
    util::TextTable curves({"guess", "(a)", "(b)", "(c)", "(d)"});
    const std::size_t longest = std::max(sweeps[0].scores.size(), sweeps[1].scores.size());
    const std::size_t step = args.csv ? 1 : std::max<std::size_t>(1, longest / 12);
    for (std::size_t g = 0; g < longest; g += step) {
        std::vector<std::string> row{std::to_string(g)};
        for (const auto& sweep : sweeps) {
            row.push_back(g < sweep.scores.size() ? render(sweep.scores[g]) : "");
        }
        curves.add_row(std::move(row));
    }
    if (!args.csv) {
        std::cout << "(sweep curves subsampled every " << step << " guesses; --csv for all)\n";
    }
    emit(args, "sweep curves", curves);
    return 0;
}

}  // namespace hdlock::bench
