/// \file bench_ops.cpp
/// google-benchmark micro-costs behind the paper's overhead claims, plus the
/// ablations called out in DESIGN.md §4:
///
///  - MAP operator kernels (bind, rotate, Hamming) across dimensions;
///  - record encoding: bit-sliced column accumulation vs. the naive
///    per-element reference (the encoder hot-loop ablation), and the
///    batch-first pipeline: scratch-reusing encode_batch with the fused
///    add_xor kernel, with and without the N x M BoundProductCache;
///  - Eq. 9 feature materialization cost vs. the number of key layers;
///  - the feature attack's full-distance vs. restricted-index criterion
///    (the attack-cost ablation);
///  - the Sec. 4.2 single-parameter sweep, the unit of the (D*P)^L search;
///  - batched serving: api::InferenceSession at 1/2/4 threads vs. the old
///    per-row predict loop (real time, since the point is wall-clock
///    throughput of the partitioned batch), cache off and on;
///  - the kernel-backend comparison: xor/popcount/hamming word kernels and
///    the full batch encode, once per backend available on this host
///    (BM_Backend*/portable vs /avx2 vs /avx512), registered dynamically so
///    the same binary reports whatever the hardware offers.
///
/// Beyond google-benchmark's own flags, main() accepts:
///   --smoke       one tiny timing window per benchmark — CI's sanitizer job
///                 uses it to drive every kernel through ASan/UBSan
///   --json[=P]    machine-readable results (benchmark's JSON reporter) to P
///                 (default BENCH_ops.json); commit one BENCH_*.json per perf
///                 PR so the throughput trajectory is recorded in-repo

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/api.hpp"
#include "attack/feature_attack.hpp"
#include "attack/lock_attack.hpp"
#include "attack/oracle.hpp"
#include "core/locked_encoder.hpp"
#include "data/synthetic.hpp"
#include "hdc/encoder.hpp"
#include "hdc/item_memory.hpp"
#include "hdc/model.hpp"
#include "util/kernels.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace {

using namespace hdlock;

hdc::BinaryHV random_hv(std::size_t dim, std::uint64_t seed) {
    util::Xoshiro256ss rng(seed);
    return hdc::BinaryHV::random(dim, rng);
}

void BM_BinaryMultiply(benchmark::State& state) {
    const auto dim = static_cast<std::size_t>(state.range(0));
    const auto a = random_hv(dim, 1);
    const auto b = random_hv(dim, 2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(a * b);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_BinaryMultiply)->Arg(1024)->Arg(4096)->Arg(10000)->Arg(16384);

void BM_BinaryRotate(benchmark::State& state) {
    const auto dim = static_cast<std::size_t>(state.range(0));
    const auto hv = random_hv(dim, 3);
    std::size_t k = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(hv.rotated(k));
        k = (k * 31 + 7) % dim;  // vary the shift so no branch predictor wins
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_BinaryRotate)->Arg(1024)->Arg(10000);

void BM_Hamming(benchmark::State& state) {
    const auto dim = static_cast<std::size_t>(state.range(0));
    const auto a = random_hv(dim, 4);
    const auto b = random_hv(dim, 5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(a.hamming(b));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_Hamming)->Arg(1024)->Arg(10000);

void BM_IntHVSign(benchmark::State& state) {
    const auto dim = static_cast<std::size_t>(state.range(0));
    util::Xoshiro256ss rng(6);
    hdc::IntHV sums(dim);
    for (std::size_t j = 0; j < dim; ++j) {
        sums[j] = static_cast<std::int32_t>(rng.next_below(64)) - 32;
    }
    for (auto _ : state) {
        util::Xoshiro256ss tie_rng(7);
        benchmark::DoNotOptimize(sums.sign(tie_rng));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_IntHVSign)->Arg(1024)->Arg(10000);

/// Encoder hot loop: bit-sliced accumulation (the shipping implementation).
void BM_EncodeBitsliced(benchmark::State& state) {
    const auto n_features = static_cast<std::size_t>(state.range(0));
    hdc::ItemMemoryConfig config;
    config.dim = 4096;
    config.n_features = n_features;
    config.n_levels = 16;
    config.seed = 11;
    const auto memory = std::make_shared<const hdc::ItemMemory>(hdc::ItemMemory::generate(config));
    const hdc::RecordEncoder encoder(memory, /*tie_seed=*/1);

    // Random levels: the same workload as the batch benchmarks below, so
    // per-row vs. batch vs. cached items/s compare directly.
    std::vector<int> levels(n_features);
    util::Xoshiro256ss rng(23);
    for (auto& level : levels) level = static_cast<int>(rng.next_below(16));
    for (auto _ : state) {
        benchmark::DoNotOptimize(encoder.encode(levels));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n_features) * 4096);
}
BENCHMARK(BM_EncodeBitsliced)->Arg(64)->Arg(256)->Arg(784);

/// Ablation: the naive per-element Eq. 2 reference the tests compare against.
void BM_EncodeReference(benchmark::State& state) {
    const auto n_features = static_cast<std::size_t>(state.range(0));
    hdc::ItemMemoryConfig config;
    config.dim = 4096;
    config.n_features = n_features;
    config.n_levels = 16;
    config.seed = 11;
    const auto memory = std::make_shared<const hdc::ItemMemory>(hdc::ItemMemory::generate(config));
    const hdc::RecordEncoder encoder(memory, /*tie_seed=*/1);

    std::vector<int> levels(n_features);
    util::Xoshiro256ss rng(23);
    for (auto& level : levels) level = static_cast<int>(rng.next_below(16));
    for (auto _ : state) {
        benchmark::DoNotOptimize(encoder.encode_reference(levels));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n_features) * 4096);
}
BENCHMARK(BM_EncodeReference)->Arg(64)->Arg(256)->Arg(784);

/// Batch-first encoding: scratch reused across rows, XOR fused into the
/// counter (ColumnCounter::add_xor), zero per-row allocations.  Compare
/// items/s against BM_EncodeBitsliced (the per-row API) for the pipeline
/// win, and against BM_EncodeBatchCached for the product-cache win.
void BM_EncodeBatch(benchmark::State& state) {
    const auto n_features = static_cast<std::size_t>(state.range(0));
    hdc::ItemMemoryConfig config;
    config.dim = 4096;
    config.n_features = n_features;
    config.n_levels = 16;
    config.seed = 11;
    const auto memory = std::make_shared<const hdc::ItemMemory>(hdc::ItemMemory::generate(config));
    const hdc::RecordEncoder encoder(memory, /*tie_seed=*/1);

    util::Matrix<int> levels(64, n_features);
    util::Xoshiro256ss rng(23);
    for (auto& level : levels.data()) level = static_cast<int>(rng.next_below(16));

    hdc::EncoderScratch scratch;
    std::vector<hdc::IntHV> out;
    for (auto _ : state) {
        encoder.encode_batch(levels, scratch, out);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(levels.rows()) *
                            static_cast<std::int64_t>(n_features) * 4096);
}
BENCHMARK(BM_EncodeBatch)->Arg(64)->Arg(256)->Arg(784);

/// The same batch through the N x M BoundProductCache: each row is pure
/// counter adds (no XORs).  The ablation behind SessionOptions::
/// use_product_cache.
void BM_EncodeBatchCached(benchmark::State& state) {
    const auto n_features = static_cast<std::size_t>(state.range(0));
    hdc::ItemMemoryConfig config;
    config.dim = 4096;
    config.n_features = n_features;
    config.n_levels = 16;
    config.seed = 11;
    const auto memory = std::make_shared<const hdc::ItemMemory>(hdc::ItemMemory::generate(config));
    const hdc::RecordEncoder encoder(memory, /*tie_seed=*/1);
    const auto cache = encoder.make_product_cache(std::size_t{1} << 30);

    util::Matrix<int> levels(64, n_features);
    util::Xoshiro256ss rng(23);
    for (auto& level : levels.data()) level = static_cast<int>(rng.next_below(16));

    hdc::EncoderScratch scratch;
    std::vector<hdc::IntHV> out;
    for (auto _ : state) {
        encoder.encode_batch(levels, scratch, out, cache.get());
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(levels.rows()) *
                            static_cast<std::int64_t>(n_features) * 4096);
}
BENCHMARK(BM_EncodeBatchCached)->Arg(64)->Arg(256)->Arg(784);

/// Eq. 9 product cost per feature as the key deepens (bench_fig9's software
/// cross-check, isolated).
void BM_MaterializeFeature(benchmark::State& state) {
    const auto n_layers = static_cast<std::size_t>(state.range(0));
    PublicStoreConfig config;
    config.dim = 10000;
    config.pool_size = 64;
    config.n_levels = 2;
    config.seed = 13;
    ValueMapping mapping;
    const auto store = PublicStore::generate(config, mapping);

    std::vector<SubKeyEntry> sub_key(n_layers);
    for (std::size_t l = 0; l < n_layers; ++l) {
        sub_key[l] = SubKeyEntry{static_cast<std::uint32_t>((l * 17 + 3) % config.pool_size),
                                 static_cast<std::uint32_t>(l * 991 + 7)};
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(LockedEncoder::materialize_feature(store, sub_key));
    }
}
BENCHMARK(BM_MaterializeFeature)->DenseRange(1, 5);

struct AttackFixture {
    Deployment deployment;
    std::shared_ptr<attack::EncodingOracle> oracle;
    ValueMapping level_to_slot;

    explicit AttackFixture(std::size_t n_features, std::size_t dim, std::size_t n_layers) {
        DeploymentConfig config;
        config.dim = dim;
        config.n_features = n_features;
        config.n_levels = 8;
        config.n_layers = n_layers;
        config.seed = 17;
        deployment = provision(config);
        oracle = std::make_shared<attack::EncodingOracle>(deployment.encoder);
        level_to_slot = deployment.secure->value_mapping();
    }
};

/// Ablation: full-distance criterion (Eq. 8 over every dimension).
void BM_FeatureAttackFull(benchmark::State& state) {
    const AttackFixture fixture(/*n_features=*/96, /*dim=*/2048, /*n_layers=*/0);
    attack::FeatureAttackConfig config;
    config.criterion = attack::DistanceCriterion::full;
    for (auto _ : state) {
        benchmark::DoNotOptimize(attack::extract_feature_mapping(
            *fixture.deployment.store, *fixture.oracle, fixture.level_to_slot, config));
    }
}
BENCHMARK(BM_FeatureAttackFull)->Unit(benchmark::kMillisecond);

/// Ablation: restricted-index criterion (distance only on the flipped set I).
void BM_FeatureAttackRestricted(benchmark::State& state) {
    const AttackFixture fixture(/*n_features=*/96, /*dim=*/2048, /*n_layers=*/0);
    attack::FeatureAttackConfig config;
    config.criterion = attack::DistanceCriterion::restricted;
    for (auto _ : state) {
        benchmark::DoNotOptimize(attack::extract_feature_mapping(
            *fixture.deployment.store, *fixture.oracle, fixture.level_to_slot, config));
    }
}
BENCHMARK(BM_FeatureAttackRestricted)->Unit(benchmark::kMillisecond);

/// One Sec. 4.2 parameter sweep: D guesses, the unit step of the (D*P)^L
/// joint search whose total the paper extrapolates.
void BM_LockRotationSweep(benchmark::State& state) {
    const auto dim = static_cast<std::size_t>(state.range(0));
    const AttackFixture fixture(/*n_features=*/32, dim, /*n_layers=*/2);
    attack::LockSweepConfig config;
    config.parameter = attack::LockParameter::rotation;
    for (auto _ : state) {
        benchmark::DoNotOptimize(attack::sweep_lock_parameter(
            *fixture.deployment.store, *fixture.oracle, fixture.deployment.secure->key(),
            fixture.level_to_slot, config));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(dim));  // guesses per sweep
}
BENCHMARK(BM_LockRotationSweep)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Batched serving: the api::InferenceSession hot path.
// ---------------------------------------------------------------------------

struct ServingFixture {
    api::Owner owner;
    util::Matrix<float> batch;
};

const ServingFixture& serving_fixture() {
    static const ServingFixture fixture = [] {
        data::SyntheticSpec spec;
        spec.name = "serving";
        spec.n_features = 128;
        spec.n_classes = 4;
        spec.n_train = 400;
        spec.n_test = 256;
        spec.n_levels = 8;
        spec.noise = 0.12;
        spec.seed = 21;
        const auto benchmark_data = data::make_benchmark(spec);

        DeploymentConfig config;
        config.dim = 2048;
        config.n_features = spec.n_features;
        config.n_levels = spec.n_levels;
        config.n_layers = 2;
        config.seed = 9;
        api::Owner owner = api::Owner::provision(config);
        api::TrainOptions train;
        train.kind = hdc::ModelKind::binary;
        train.retrain_epochs = 3;
        owner.train(benchmark_data.train, train);

        // A 2048-row inference batch, tiled from the test partition.
        util::Matrix<float> batch(2048, spec.n_features);
        for (std::size_t r = 0; r < batch.rows(); ++r) {
            const auto source = benchmark_data.test.X.row(r % benchmark_data.test.n_samples());
            const auto destination = batch.row(r);
            std::copy(source.begin(), source.end(), destination.begin());
        }
        return ServingFixture{std::move(owner), std::move(batch)};
    }();
    return fixture;
}

/// The pre-session idiom: one predict_row call per sample.
void BM_ServePerRowLoop(benchmark::State& state) {
    const ServingFixture& fixture = serving_fixture();
    const auto session = fixture.owner.open_session({.n_threads = 1});
    for (auto _ : state) {
        int sink = 0;
        for (std::size_t r = 0; r < fixture.batch.rows(); ++r) {
            sink += session.predict_row(fixture.batch.row(r));
        }
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(fixture.batch.rows()));
}
BENCHMARK(BM_ServePerRowLoop)->Unit(benchmark::kMillisecond)->UseRealTime();

/// Batched serving across worker threads; items/s is rows classified per
/// second — compare Arg(4) against BM_ServePerRowLoop for the speedup.
void BM_ServeBatchSession(benchmark::State& state) {
    const ServingFixture& fixture = serving_fixture();
    const auto session = fixture.owner.open_session(
        {.n_threads = static_cast<std::size_t>(state.range(0))});
    for (auto _ : state) {
        benchmark::DoNotOptimize(session.predict(fixture.batch));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(fixture.batch.rows()));
}
BENCHMARK(BM_ServeBatchSession)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Batched serving with the bound-product cache active (bit-identical
/// output; the memory/throughput trade-off documented in the README).
void BM_ServeBatchSessionCached(benchmark::State& state) {
    const ServingFixture& fixture = serving_fixture();
    const auto session = fixture.owner.open_session(
        {.n_threads = static_cast<std::size_t>(state.range(0)), .use_product_cache = true});
    for (auto _ : state) {
        benchmark::DoNotOptimize(session.predict(fixture.batch));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(fixture.batch.rows()));
}
BENCHMARK(BM_ServeBatchSessionCached)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---------------------------------------------------------------------------
// Serving core (persistent pool + async micro-batching + mmap startup): the
// numbers behind bench/results/BENCH_*_serving_core.json.
//
//  - BM_ServeSmallBatch/{pooled,spawn}/{1,8,64}: small-batch dispatch cost.
//    `pooled` is the shipping configuration (persistent pool, single-row /
//    small-batch inline fast path); `spawn` is the legacy thread-per-batch
//    dispatch forced to fan out (min_rows_per_thread = 1), i.e. what every
//    predict() used to pay before the pool.  The acceptance bar is >= 2x
//    rows/s at 8 rows and no regression at large batches.
//  - BM_ServeConcurrentCallers: p50/p99 single-row latency with 4 caller
//    threads hammering one shared session, pool vs. spawn.
//  - BM_ServeAsyncMicroBatch: 64 independent 1-row predict_async() calls
//    per iteration, coalesced by the SubmitQueue dispatcher.
//  - BM_RouterOpenLoop/<placement>/{shards,burst}: open-loop typed requests
//    against a ShardRouter fleet — bursts past the shed watermark must come
//    back Overloaded (bounded queues, bounded p99 queue time) while every
//    Ok response stays bit-identical to a reference session.
//  - BM_BundleLoad{Copy,Mapped}: device `.hdlk` startup at D=10k, P=784 —
//    full-copy load_device() vs. zero-copy open_mapped().
// ---------------------------------------------------------------------------

/// Low-latency serving fixture (D=1024, N=32, binary, product cache on):
/// the dispatch-bound regime where per-row encode is ~1-2 us and the cost
/// of *getting a batch onto threads* is what the benchmark resolves.  The
/// compute-bound regime (D=2048, N=128, 2048-row batches) stays covered by
/// BM_ServeBatchSession above.
const ServingFixture& latency_fixture() {
    static const ServingFixture fixture = [] {
        data::SyntheticSpec spec;
        spec.name = "latency";
        spec.n_features = 32;
        spec.n_classes = 4;
        spec.n_train = 300;
        spec.n_test = 128;
        spec.n_levels = 8;
        spec.noise = 0.1;
        spec.seed = 33;
        const auto benchmark_data = data::make_benchmark(spec);

        DeploymentConfig config;
        config.dim = 1024;
        config.n_features = spec.n_features;
        config.n_levels = spec.n_levels;
        config.n_layers = 1;
        config.seed = 19;
        api::Owner owner = api::Owner::provision(config);
        api::TrainOptions train;
        train.kind = hdc::ModelKind::binary;
        train.retrain_epochs = 3;
        owner.train(benchmark_data.train, train);

        util::Matrix<float> batch(256, spec.n_features);
        for (std::size_t r = 0; r < batch.rows(); ++r) {
            const auto source = benchmark_data.test.X.row(r % benchmark_data.test.n_samples());
            std::copy(source.begin(), source.end(), batch.row(r).begin());
        }
        return ServingFixture{std::move(owner), std::move(batch)};
    }();
    return fixture;
}

util::Matrix<float> tile_rows(const util::Matrix<float>& source, std::size_t rows) {
    util::Matrix<float> batch(rows, source.cols());
    for (std::size_t r = 0; r < rows; ++r) {
        const auto from = source.row(r % source.rows());
        std::copy(from.begin(), from.end(), batch.row(r).begin());
    }
    return batch;
}

api::SessionOptions serving_mode_options(api::DispatchMode mode) {
    api::SessionOptions options;
    options.n_threads = 4;  // the server config BM_ServeBatchSession/4 uses
    options.dispatch = mode;
    // The shipping serving configuration keeps the product cache on (it is
    // bit-identical and makes the per-row encode cheap enough that dispatch
    // cost is what these benchmarks actually resolve).
    options.use_product_cache = true;
    // The legacy dispatch fanned small batches out greedily; the pooled
    // core keeps its production default (inline below 16 rows/worker).
    if (mode == api::DispatchMode::spawn) options.min_rows_per_thread = 1;
    return options;
}

void BM_ServeSmallBatch(benchmark::State& state, api::DispatchMode mode) {
    const ServingFixture& fixture = latency_fixture();
    const auto session = fixture.owner.open_session(serving_mode_options(mode));
    const auto batch = tile_rows(fixture.batch, static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(session.predict(batch));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(batch.rows()));
}
BENCHMARK_CAPTURE(BM_ServeSmallBatch, pooled, api::DispatchMode::pooled)
    ->Arg(1)->Arg(8)->Arg(64)->Arg(1024)->UseRealTime();
BENCHMARK_CAPTURE(BM_ServeSmallBatch, spawn, api::DispatchMode::spawn)
    ->Arg(1)->Arg(8)->Arg(64)->Arg(1024)->UseRealTime();

/// Concurrent single-row callers on one shared session: each iteration runs
/// 4 threads x 64 predict() calls of one row and reports the merged p50/p99
/// call latency alongside rows/s.
void BM_ServeConcurrentCallers(benchmark::State& state, api::DispatchMode mode) {
    const ServingFixture& fixture = latency_fixture();
    const auto session = fixture.owner.open_session(serving_mode_options(mode));
    constexpr std::size_t kCallers = 4;
    constexpr std::size_t kCallsPerCaller = 64;
    std::vector<util::Matrix<float>> rows;
    for (std::size_t r = 0; r < kCallsPerCaller; ++r) rows.push_back(tile_rows(fixture.batch, 1));

    std::vector<double> latencies;
    for (auto _ : state) {
        std::vector<util::Thread> callers;
        std::vector<std::vector<double>> per_caller(kCallers);
        for (std::size_t t = 0; t < kCallers; ++t) {
            callers.emplace_back(util::Thread([&, t] {
                for (std::size_t c = 0; c < kCallsPerCaller; ++c) {
                    const auto start = std::chrono::steady_clock::now();
                    benchmark::DoNotOptimize(session.predict(rows[c]));
                    per_caller[t].push_back(
                        std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - start)
                            .count());
                }
            }));
        }
        for (auto& caller : callers) caller.join();
        for (auto& caller_latencies : per_caller) {
            latencies.insert(latencies.end(), caller_latencies.begin(), caller_latencies.end());
        }
    }
    std::sort(latencies.begin(), latencies.end());
    if (!latencies.empty()) {
        state.counters["p50_us"] = latencies[latencies.size() / 2];
        state.counters["p99_us"] = latencies[latencies.size() * 99 / 100];
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kCallers *
                            kCallsPerCaller);
}
BENCHMARK_CAPTURE(BM_ServeConcurrentCallers, pooled, api::DispatchMode::pooled)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(BM_ServeConcurrentCallers, spawn, api::DispatchMode::spawn)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// 64 independent 1-row requests per iteration through predict_async(): the
/// SubmitQueue coalesces them into micro-batches that ride the pool.
void BM_ServeAsyncMicroBatch(benchmark::State& state) {
    const ServingFixture& fixture = latency_fixture();
    api::SessionOptions options;
    options.n_threads = 2;
    options.min_rows_per_thread = 1;
    options.max_batch = 64;
    options.max_queue_delay = std::chrono::microseconds(100);
    const auto session = fixture.owner.open_session(options);
    constexpr std::size_t kRequests = 64;
    for (auto _ : state) {
        std::vector<std::future<std::vector<int>>> futures;
        futures.reserve(kRequests);
        for (std::size_t r = 0; r < kRequests; ++r) {
            futures.push_back(session.predict_async(tile_rows(fixture.batch, 1)));
        }
        for (auto& future : futures) benchmark::DoNotOptimize(future.get());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kRequests);
}
BENCHMARK(BM_ServeAsyncMicroBatch)->Unit(benchmark::kMillisecond)->UseRealTime();

/// Open-loop load against the shard-router fleet: each iteration fires
/// `burst` 8-row typed requests without awaiting, then harvests every
/// future.  range(0) = shard count, range(1) = burst size; small bursts fit
/// under the shed watermark (derived: shards x max_queue_rows), large ones
/// cross it so admission control engages.  Counters record the split and
/// the queue-time percentiles of the served requests; `bit_identical` is 1
/// only if every Ok response matched the reference session's labels.
void BM_RouterOpenLoop(benchmark::State& state, api::Placement placement) {
    const ServingFixture& fixture = latency_fixture();
    const auto shards = static_cast<std::size_t>(state.range(0));
    const auto burst = static_cast<std::size_t>(state.range(1));
    constexpr std::size_t kRowsPerRequest = 8;

    api::RouterOptions options;
    options.n_shards = shards;
    options.placement = placement;
    options.session.n_threads = 2;
    options.session.min_rows_per_thread = 1;
    options.session.use_product_cache = true;
    options.session.max_batch = 64;
    options.session.max_queue_rows = 256;
    const auto router = fixture.owner.open_router(options);
    const auto reference = fixture.owner.open_session({.n_threads = 1});
    const auto rows = tile_rows(fixture.batch, kRowsPerRequest);
    const std::vector<int> expected = reference.predict(rows);

    std::uint64_t ok = 0;
    std::uint64_t shed = 0;
    std::uint64_t mismatches = 0;
    std::vector<double> queue_us;
    for (auto _ : state) {
        std::vector<std::future<api::Response>> inflight;
        inflight.reserve(burst);
        for (std::size_t r = 0; r < burst; ++r) {
            api::Request request;
            request.rows = tile_rows(fixture.batch, kRowsPerRequest);
            if (placement == api::Placement::consistent_hash) request.shard_key = r % 16;
            inflight.push_back(router.submit(std::move(request)));
        }
        for (auto& future : inflight) {
            const api::Response response = future.get();
            if (response.ok()) {
                ++ok;
                if (response.labels != expected) ++mismatches;
                queue_us.push_back(
                    std::chrono::duration<double, std::micro>(response.queue_time).count());
            } else if (response.status == api::Status::overloaded) {
                ++shed;
            }
        }
    }
    std::sort(queue_us.begin(), queue_us.end());
    if (!queue_us.empty()) {
        state.counters["queue_p50_us"] = queue_us[queue_us.size() / 2];
        state.counters["queue_p99_us"] = queue_us[queue_us.size() * 99 / 100];
    }
    state.counters["ok"] = static_cast<double>(ok);
    state.counters["shed"] = static_cast<double>(shed);
    state.counters["shed_pct"] =
        ok + shed == 0 ? 0.0 : 100.0 * static_cast<double>(shed) / static_cast<double>(ok + shed);
    state.counters["bit_identical"] = mismatches == 0 ? 1.0 : 0.0;
    state.SetItemsProcessed(static_cast<std::int64_t>(ok) *
                            static_cast<std::int64_t>(kRowsPerRequest));
}
BENCHMARK_CAPTURE(BM_RouterOpenLoop, least_loaded, api::Placement::least_loaded)
    ->Args({1, 16})->Args({1, 256})->Args({4, 16})->Args({4, 256})
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(BM_RouterOpenLoop, round_robin, api::Placement::round_robin)
    ->Args({4, 256})->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(BM_RouterOpenLoop, consistent_hash, api::Placement::consistent_hash)
    ->Args({4, 256})->Unit(benchmark::kMillisecond)->UseRealTime();

/// Device `.hdlk` startup at the paper's deployment scale (D=10k, P=784):
/// the full-copy loader vs. the zero-copy mapped open.  The file is written
/// once; each iteration performs a complete load and drops it.
struct BundleLoadFixture {
    std::filesystem::path path;
    std::uintmax_t file_bytes = 0;

    BundleLoadFixture() {
        DeploymentConfig config;
        config.dim = 10000;
        config.n_features = 784;
        config.pool_size = 784;
        config.n_levels = 16;
        config.n_layers = 2;
        config.seed = 27;
        const api::Owner owner = api::Owner::provision(config);
        path = std::filesystem::temp_directory_path() / "hdlock_bench_serving_core.hdlk";
        owner.export_device(path);
        file_bytes = std::filesystem::file_size(path);
    }
};

const BundleLoadFixture& bundle_load_fixture() {
    static const BundleLoadFixture fixture;
    return fixture;
}

void BM_BundleLoadCopy(benchmark::State& state) {
    const auto& fixture = bundle_load_fixture();
    for (auto _ : state) {
        benchmark::DoNotOptimize(api::DeploymentBundle::load_device(fixture.path));
    }
    state.counters["file_bytes"] = static_cast<double>(fixture.file_bytes);
}
BENCHMARK(BM_BundleLoadCopy)->Unit(benchmark::kMillisecond);

void BM_BundleOpenMapped(benchmark::State& state) {
    const auto& fixture = bundle_load_fixture();
    for (auto _ : state) {
        benchmark::DoNotOptimize(api::DeploymentBundle::open_mapped(fixture.path));
    }
    state.counters["file_bytes"] = static_cast<double>(fixture.file_bytes);
}
BENCHMARK(BM_BundleOpenMapped)->Unit(benchmark::kMillisecond);

void BM_BundleOpenMappedWillneed(benchmark::State& state) {
    const auto& fixture = bundle_load_fixture();
    for (auto _ : state) {
        benchmark::DoNotOptimize(api::DeploymentBundle::open_mapped(
            fixture.path, util::MappedFile::Advice::willneed));
    }
    state.counters["file_bytes"] = static_cast<double>(fixture.file_bytes);
}
BENCHMARK(BM_BundleOpenMappedWillneed)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Kernel-backend comparison: the same word kernels and the same batch encode
// once per backend the host can run.  Registered dynamically from main() so
// bench_ops --json reports exactly what this machine offers; compare
// BM_BackendEncodeBatch/avx2 against /portable for the SIMD speedup (the
// acceptance bar is >= 1.5x on AVX2 hardware).
// ---------------------------------------------------------------------------

namespace kernels = hdlock::util::kernels;

/// Word arrays sized like a D = 10000 hypervector (157 words, odd tail).
struct WordFixture {
    std::vector<hdlock::util::bits::Word> a;
    std::vector<hdlock::util::bits::Word> b;
    std::vector<hdlock::util::bits::Word> dst;

    explicit WordFixture(std::size_t n_words) : a(n_words), b(n_words), dst(n_words) {
        util::Xoshiro256ss rng(71);
        for (auto& word : a) word = rng();
        for (auto& word : b) word = rng();
    }
};

void BM_BackendXor(benchmark::State& state, kernels::Backend kind) {
    const kernels::ScopedBackend pin(kind);
    WordFixture fixture(157);
    for (auto _ : state) {
        hdlock::util::bits::xor_into(fixture.dst, fixture.a, fixture.b);
        benchmark::DoNotOptimize(fixture.dst.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 157 * 8);
}

void BM_BackendPopcount(benchmark::State& state, kernels::Backend kind) {
    const kernels::ScopedBackend pin(kind);
    WordFixture fixture(157);
    for (auto _ : state) {
        benchmark::DoNotOptimize(hdlock::util::bits::popcount(fixture.a));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 157 * 8);
}

void BM_BackendHamming(benchmark::State& state, kernels::Backend kind) {
    const kernels::ScopedBackend pin(kind);
    WordFixture fixture(157);
    for (auto _ : state) {
        benchmark::DoNotOptimize(hdlock::util::bits::hamming(fixture.a, fixture.b));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 157 * 8);
}

/// The BM_EncodeBatch workload (64 rows, N = 256, D = 4096) pinned to one
/// backend: the end-to-end encode number the acceptance criterion reads.
void BM_BackendEncodeBatch(benchmark::State& state, kernels::Backend kind) {
    const kernels::ScopedBackend pin(kind);
    constexpr std::size_t n_features = 256;
    hdc::ItemMemoryConfig config;
    config.dim = 4096;
    config.n_features = n_features;
    config.n_levels = 16;
    config.seed = 11;
    const auto memory = std::make_shared<const hdc::ItemMemory>(hdc::ItemMemory::generate(config));
    const hdc::RecordEncoder encoder(memory, /*tie_seed=*/1);

    util::Matrix<int> levels(64, n_features);
    util::Xoshiro256ss rng(23);
    for (auto& level : levels.data()) level = static_cast<int>(rng.next_below(16));

    hdc::EncoderScratch scratch;
    std::vector<hdc::IntHV> out;
    for (auto _ : state) {
        encoder.encode_batch(levels, scratch, out);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(levels.rows()) *
                            static_cast<std::int64_t>(n_features) * 4096);
}

/// Binary serving distance scoring pinned to one backend: 10k-dim Hamming
/// argmin across 16 class HVs (the HdcModel::predict inner loop).
void BM_BackendPredictBinary(benchmark::State& state, kernels::Backend kind) {
    const kernels::ScopedBackend pin(kind);
    util::Xoshiro256ss rng(301);
    std::vector<hdc::BinaryHV> classes;
    for (int c = 0; c < 16; ++c) classes.push_back(hdc::BinaryHV::random(10000, rng));
    const auto query = hdc::BinaryHV::random(10000, rng);
    for (auto _ : state) {
        std::size_t best = query.dim() + 1;
        for (const auto& cls : classes) best = std::min(best, cls.hamming(query));
        benchmark::DoNotOptimize(best);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 16 * 10000);
}

/// The serving inner loop end to end at D = 10000, N = 784, 16 classes —
/// the acceptance workload for the fused encode->distance path.  `fused`
/// runs HdcModel::predict_fused (count planes stay in registers/L1, no
/// query HV materialized); `twostep` runs encode_binary_into + predict.
/// Both use the BoundProductCache, matching a served session's steady state.
struct FusedPredictFixture {
    std::shared_ptr<const hdc::ItemMemory> memory;
    std::unique_ptr<const hdc::RecordEncoder> encoder;
    std::shared_ptr<const hdc::BoundProductCache> cache;
    hdc::HdcModel model;
    std::vector<int> levels;

    FusedPredictFixture() {
        hdc::ItemMemoryConfig config;
        config.dim = 10000;
        config.n_features = 784;
        config.n_levels = 16;
        config.seed = 601;
        memory = std::make_shared<const hdc::ItemMemory>(hdc::ItemMemory::generate(config));
        encoder = std::make_unique<const hdc::RecordEncoder>(memory, /*tie_seed=*/7);
        cache = encoder->make_product_cache(std::size_t{1} << 31);

        util::Xoshiro256ss rng(602);
        hdc::EncodedBatch batch;
        for (int c = 0; c < 16; ++c) {
            batch.binary.push_back(hdc::BinaryHV::random(10000, rng));
            batch.non_binary.push_back(hdc::IntHV::from_binary(batch.binary.back()));
            batch.labels.push_back(c);
        }
        hdc::TrainConfig train;
        train.kind = hdc::ModelKind::binary;
        model = hdc::HdcModel::train(batch, 16, train);

        levels.resize(784);
        for (auto& level : levels) level = static_cast<int>(rng.next_below(16));
    }
};

const FusedPredictFixture& fused_predict_fixture() {
    static const FusedPredictFixture fixture;
    return fixture;
}

void BM_FusedPredict(benchmark::State& state, kernels::Backend kind, bool fused) {
    const kernels::ScopedBackend pin(kind);
    const auto& fixture = fused_predict_fixture();
    hdc::EncoderScratch scratch;
    hdc::BinaryHV query;
    for (auto _ : state) {
        int label;
        if (fused) {
            label = fixture.model.predict_fused(*fixture.encoder, fixture.levels, scratch,
                                                fixture.cache.get());
        } else {
            fixture.encoder->encode_binary_into(fixture.levels, scratch, query,
                                                fixture.cache.get());
            label = fixture.model.predict(query);
        }
        benchmark::DoNotOptimize(label);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void register_backend_benchmarks() {
    for (const kernels::Backend kind : kernels::available_backends()) {
        const std::string suffix = std::string("/") + kernels::backend_name(kind);
        benchmark::RegisterBenchmark(("BM_BackendXor" + suffix).c_str(), BM_BackendXor, kind);
        benchmark::RegisterBenchmark(("BM_BackendPopcount" + suffix).c_str(), BM_BackendPopcount,
                                     kind);
        benchmark::RegisterBenchmark(("BM_BackendHamming" + suffix).c_str(), BM_BackendHamming,
                                     kind);
        benchmark::RegisterBenchmark(("BM_BackendEncodeBatch" + suffix).c_str(),
                                     BM_BackendEncodeBatch, kind);
        benchmark::RegisterBenchmark(("BM_BackendPredictBinary" + suffix).c_str(),
                                     BM_BackendPredictBinary, kind);
        benchmark::RegisterBenchmark(("BM_FusedPredict" + suffix + "/on").c_str(),
                                     BM_FusedPredict, kind, true);
        benchmark::RegisterBenchmark(("BM_FusedPredict" + suffix + "/off").c_str(),
                                     BM_FusedPredict, kind, false);
    }
}

}  // namespace

/// BENCHMARK_MAIN plus two repo-specific flags (see file comment): --smoke
/// and --json[=PATH], both rewritten into google-benchmark's own flags.
int main(int argc, char** argv) {
    std::vector<std::string> storage;
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--json") {
            storage.emplace_back("--benchmark_out=BENCH_ops.json");
        } else if (arg.starts_with("--json=")) {
            storage.emplace_back("--benchmark_out=" + std::string(arg.substr(7)));
        } else {
            storage.emplace_back(arg);
        }
    }
    if (smoke) storage.emplace_back("--benchmark_min_time=0.001");
    const bool writes_file = std::any_of(storage.begin(), storage.end(), [](const auto& entry) {
        return std::string_view(entry).starts_with("--benchmark_out=");
    });
    if (writes_file) storage.emplace_back("--benchmark_out_format=json");

    std::vector<char*> args;
    args.push_back(argv[0]);
    for (auto& entry : storage) args.push_back(entry.data());
    int n = static_cast<int>(args.size());
    register_backend_benchmarks();
    benchmark::Initialize(&n, args.data());
    benchmark::AddCustomContext("kernel_backend_default",
                                hdlock::util::kernels::active_name());
    benchmark::AddCustomContext("cpu_simd_features", hdlock::util::kernels::cpu_feature_string());
    if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
