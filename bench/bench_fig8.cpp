/// \file bench_fig8.cpp
/// Compatibility wrapper over eval scenario "fig8": inference accuracy vs.
/// the number of key layers L for the five benchmarks, non-binary and
/// binary record encoding — the paper's "no accuracy cost at any L" claim.
/// Training at D = 10,000 across 5 datasets x 2 kinds x 6 layer counts is
/// the most expensive experiment in the suite; the default uses D = 4,096
/// (the flatness claim is dimension-independent), --full runs the paper's
/// scale.  The experiment lives in src/eval/scenarios/scenario_fig8.cpp.

#include "common.hpp"

int main(int argc, char** argv) {
    return hdlock::bench::scenario_bench_main(
        argc, argv, "fig8", "Fig. 8: accuracy vs. number of key layers L, five benchmarks");
}
