/// \file bench_fig8.cpp
/// Reproduces Fig. 8: inference accuracy vs. the number of key layers L for
/// the five benchmarks, (a) non-binary and (b) binary record-based encoding.
/// L = 0 is the unprotected baseline.
///
/// The paper's claim: HDLock costs no accuracy at any L, because Eq. 9
/// products of orthogonal bases are themselves orthogonal — the encoder's
/// statistics are unchanged.  Expect every row to be flat up to seed noise.
///
/// Training at D = 10,000 across 5 datasets x 2 kinds x 6 layer counts is
/// the most expensive bench in the suite; the default uses D = 4,096 (the
/// flatness claim is dimension-independent), --full runs the paper's
/// D = 10,000.

#include <iostream>

#include "common.hpp"
#include "core/locked_encoder.hpp"
#include "data/synthetic.hpp"
#include "hdc/classifier.hpp"
#include "util/table.hpp"

namespace {

using namespace hdlock;

double locked_accuracy(const data::SyntheticBenchmark& benchmark, hdc::ModelKind kind,
                       std::size_t dim, std::size_t n_layers, std::uint64_t seed) {
    DeploymentConfig config;
    config.dim = dim;
    config.n_features = benchmark.train.n_features();
    config.n_levels = benchmark.spec.n_levels;
    config.n_layers = n_layers;
    config.seed = seed;
    const Deployment deployment = provision(config);

    hdc::PipelineConfig pipeline;
    pipeline.train.kind = kind;
    pipeline.train.retrain_epochs = 10;
    pipeline.train.seed = util::hash_mix(seed, n_layers);
    const auto classifier = hdc::HdcClassifier::fit(benchmark.train, deployment.encoder, pipeline);
    return classifier.evaluate(benchmark.test);
}

}  // namespace

int main(int argc, char** argv) {
    const auto args = hdlock::bench::parse_args(
        argc, argv, "Fig. 8: accuracy vs. number of key layers L, five benchmarks");

    const std::size_t dim = args.full ? 10000 : (args.quick ? 1024 : 4096);
    const std::size_t max_layers = args.quick ? 3 : 5;

    std::cout << "Fig. 8 reproduction -- accuracy under HDLock (D=" << dim
              << ", L=0 is the unprotected baseline)\n\n";

    for (const auto kind : {hdc::ModelKind::non_binary, hdc::ModelKind::binary}) {
        std::vector<std::string> headers{"benchmark"};
        for (std::size_t layers = 0; layers <= max_layers; ++layers) {
            headers.push_back("L=" + std::to_string(layers));
        }
        headers.push_back("max_drift");
        util::TextTable table(headers);

        for (const auto& spec : data::paper_benchmarks()) {
            auto scaled = spec;
            if (args.quick) {
                scaled.n_train = std::min<std::size_t>(scaled.n_train, 400);
                scaled.n_test = std::min<std::size_t>(scaled.n_test, 150);
            }
            const auto benchmark = data::make_benchmark(scaled);

            std::vector<std::string> row{spec.name};
            double baseline = 0.0;
            double max_drift = 0.0;
            for (std::size_t layers = 0; layers <= max_layers; ++layers) {
                const double accuracy =
                    locked_accuracy(benchmark, kind, dim, layers, args.seed);
                if (layers == 0) baseline = accuracy;
                max_drift = std::max(max_drift, std::abs(accuracy - baseline));
                row.push_back(util::format_fixed(accuracy, 4));
            }
            row.push_back(util::format_fixed(max_drift, 4));
            table.add_row(std::move(row));
        }
        hdlock::bench::emit(args,
                            kind == hdc::ModelKind::non_binary
                                ? "(a) non-binary record-based encoding"
                                : "(b) binary record-based encoding",
                            table);
    }

    std::cout << "paper: all curves flat in [0.80, 0.95] -- \"no observable negative impact on "
                 "the accuracy\"\n";
    return 0;
}
