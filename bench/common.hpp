#pragma once

/// \file common.hpp
/// Shared command-line handling for the table/figure reproduction binaries.
///
/// Since the eval:: harness landed, each bench_figN binary is a thin
/// compatibility wrapper over one registered eval scenario (kept because
/// scripts and CI invoke them by name); run_scenario_main() is the whole
/// body.  `hdlock_eval` is the richer front end (--threads, --json,
/// scenario selection).
///
/// Every bench accepts:
///   --csv        emit machine-readable CSV instead of aligned text tables
///   --quick      reduced scale (CI-friendly)
///   --smoke      alias of --quick under the name CI's sanitizer job uses
///                (bench_ops additionally shrinks its timing windows for it)
///   --full       paper-scale parameters where the default is reduced
///   --seed=S     override the experiment seed
///
/// --quick/--smoke semantics are uniform across every bench and scenario:
/// BOTH the trial axes (toy-case lists, layer counts, grid points) AND the
/// per-trial problem sizes (dimensions, dataset sizes) are bounded — see
/// eval/scenario.hpp, which owns the definition.
///
/// Unknown flags print usage and exit non-zero, so typos never silently run
/// the wrong experiment.

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>

#include "eval/registry.hpp"
#include "eval/render.hpp"
#include "eval/sweep_runner.hpp"

namespace hdlock::bench {

struct BenchArgs {
    bool csv = false;
    bool quick = false;
    bool full = false;
    std::uint64_t seed = 1;
};

inline BenchArgs parse_args(int argc, char** argv, std::string_view description) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--csv") {
            args.csv = true;
        } else if (arg == "--quick") {
            args.quick = true;
        } else if (arg == "--smoke") {
            args.quick = true;
        } else if (arg == "--full") {
            args.full = true;
        } else if (arg.starts_with("--seed=")) {
            args.seed = std::strtoull(std::string(arg.substr(7)).c_str(), nullptr, 10);
        } else {
            std::cerr << description << "\n\nusage: " << argv[0]
                      << " [--csv] [--quick] [--smoke] [--full] [--seed=S]\n";
            std::exit(arg == "--help" || arg == "-h" ? 0 : 2);
        }
    }
    if (args.quick && args.full) {
        std::cerr << "--quick/--smoke and --full are mutually exclusive\n";
        std::exit(2);
    }
    return args;
}

/// Runs one registered eval scenario with the bench-compatible flags and
/// prints its text/CSV rendering.  Returns 0 when the scenario ran green,
/// 1 on any trial error (the old binaries' contract).
inline int run_scenario_main(std::string_view scenario_name, const BenchArgs& args) {
    eval::RunOptions options;
    options.smoke = args.quick;
    options.full = args.full;
    options.seed = args.seed;
    options.n_threads = 0;  // hardware concurrency; output is thread-count invariant
    const eval::SweepRunner runner(options);
    const auto report = runner.run(eval::builtin_registry().at(scenario_name));
    std::cout << (args.csv ? eval::render_csv(report) : eval::render_text(report));
    return report.ok() ? 0 : 1;
}

inline int scenario_bench_main(int argc, char** argv, std::string_view scenario_name,
                               std::string_view description) {
    try {
        return run_scenario_main(scenario_name, parse_args(argc, argv, description));
    } catch (const std::exception& error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
    }
}

}  // namespace hdlock::bench
