#pragma once

/// \file common.hpp
/// Shared command-line handling for the table/figure reproduction binaries.
///
/// Every bench accepts:
///   --csv        emit machine-readable CSV instead of aligned text tables
///   --quick      reduced dimensionality/dataset sizes (CI-friendly)
///   --smoke      alias of --quick under the name CI's sanitizer job uses
///                (bench_ops additionally shrinks its timing windows for it)
///   --full       paper-scale parameters where the default is reduced
///   --seed=S     override the experiment seed
/// Unknown flags print usage and exit non-zero, so typos never silently run
/// the wrong experiment.

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>

namespace hdlock::bench {

struct BenchArgs {
    bool csv = false;
    bool quick = false;
    bool full = false;
    std::uint64_t seed = 1;
};

inline BenchArgs parse_args(int argc, char** argv, std::string_view description) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--csv") {
            args.csv = true;
        } else if (arg == "--quick") {
            args.quick = true;
        } else if (arg == "--smoke") {
            args.quick = true;
        } else if (arg == "--full") {
            args.full = true;
        } else if (arg.starts_with("--seed=")) {
            args.seed = std::strtoull(std::string(arg.substr(7)).c_str(), nullptr, 10);
        } else {
            std::cerr << description << "\n\nusage: " << argv[0]
                      << " [--csv] [--quick] [--smoke] [--full] [--seed=S]\n";
            std::exit(arg == "--help" || arg == "-h" ? 0 : 2);
        }
    }
    if (args.quick && args.full) {
        std::cerr << "--quick/--smoke and --full are mutually exclusive\n";
        std::exit(2);
    }
    return args;
}

/// Prints a table as text or CSV per the parsed flags, preceded in text mode
/// by a "== title ==" heading.
template <typename Table>
void emit(const BenchArgs& args, const std::string& title, const Table& table) {
    if (args.csv) {
        std::cout << table.to_csv();
    } else {
        std::cout << "== " << title << " ==\n" << table.to_string() << '\n';
    }
}

}  // namespace hdlock::bench
