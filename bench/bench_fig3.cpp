/// \file bench_fig3.cpp
/// Compatibility wrapper over eval scenario "fig3" (Sec. 3.2, Eq. 7/8): the
/// Hamming distances between the feature-mapping guesses and the ground
/// truth when attacking one pixel of an unprotected MNIST-scale encoder.
/// The experiment itself lives in src/eval/scenarios/scenario_fig3.cpp;
/// `hdlock_eval --scenario fig3` is the richer front end.

#include "common.hpp"

int main(int argc, char** argv) {
    return hdlock::bench::scenario_bench_main(
        argc, argv, "fig3",
        "Fig. 3: guess-vs-ground-truth Hamming distances, unprotected encoder");
}
