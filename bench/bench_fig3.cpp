/// \file bench_fig3.cpp
/// Reproduces Fig. 3: the Hamming distances between the 784 feature-mapping
/// guesses and the ground truth when attacking one pixel of an unprotected
/// MNIST-scale binary HDC encoder (Sec. 3.2, Eq. 7/8).
///
/// The paper plants the correct mapping at candidate index 400 and observes
/// that its H'_b,1 lands far below every wrong guess (~0.005 vs. the
/// 0.01-0.025 band: a wrong candidate perturbs only 2 of 784 bundling terms,
/// so most output bits still agree).  This bench probes the first feature,
/// reports the full guess curve, and extends the experiment with the
/// non-binary oracle, where the correct guess is exact (distance 0 /
/// "cosine exactly 1" per Sec. 3.2).
///
/// Default scale is the paper's: N = P = 784, D = 10,000, M = 16.

#include <algorithm>
#include <iostream>
#include <vector>

#include "attack/feature_attack.hpp"
#include "attack/value_attack.hpp"
#include "common.hpp"
#include "core/locked_encoder.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace hdlock;

struct CurveSummary {
    double correct_distance = 0.0;
    double wrong_min = 0.0;
    double wrong_mean = 0.0;
    double wrong_max = 0.0;
    bool attack_succeeds = false;
};

CurveSummary summarize(const attack::GuessCurve& curve, std::size_t correct_slot) {
    CurveSummary summary;
    summary.correct_distance = curve.distances[correct_slot];
    std::vector<double> wrong;
    wrong.reserve(curve.distances.size() - 1);
    for (std::size_t n = 0; n < curve.distances.size(); ++n) {
        if (n != correct_slot) wrong.push_back(curve.distances[n]);
    }
    summary.wrong_min = *std::ranges::min_element(wrong);
    summary.wrong_max = *std::ranges::max_element(wrong);
    summary.wrong_mean = util::mean(wrong);
    summary.attack_succeeds = curve.best_candidate == correct_slot;
    return summary;
}

}  // namespace

int main(int argc, char** argv) {
    const auto args = hdlock::bench::parse_args(
        argc, argv, "Fig. 3: guess-vs-ground-truth Hamming distances, unprotected encoder");

    DeploymentConfig config;
    config.dim = args.quick ? 2048 : 10000;
    config.n_features = args.quick ? 128 : 784;
    config.n_levels = 16;
    config.n_layers = 0;  // the vulnerable baseline of Sec. 3
    config.seed = args.seed;
    const Deployment deployment = provision(config);

    // Strong-attacker shortcut for the curve: the value mapping is reasoned
    // first (it succeeds; see bench_table1), here we read it for brevity.
    const auto& level_to_slot = deployment.secure->value_mapping();
    const std::size_t probe_feature = 0;
    const std::size_t correct_slot = deployment.secure->key().entry(probe_feature, 0).base_index;

    util::TextTable table({"oracle", "correct_guess", "wrong_min", "wrong_mean", "wrong_max",
                           "separation", "attack_succeeds"});
    attack::GuessCurve curves[2];
    const char* names[2] = {"binary", "non-binary"};
    for (const bool binary : {true, false}) {
        const attack::EncodingOracle oracle(deployment.encoder);
        const auto curve = attack::feature_guess_curve(*deployment.store, oracle, level_to_slot,
                                                       probe_feature, binary);
        curves[binary ? 0 : 1] = curve;
        const auto summary = summarize(curve, correct_slot);
        const double separation =
            summary.correct_distance > 0.0 ? summary.wrong_min / summary.correct_distance : 1e9;
        table.add_row({names[binary ? 0 : 1], util::format_fixed(summary.correct_distance, 5),
                       util::format_fixed(summary.wrong_min, 5),
                       util::format_fixed(summary.wrong_mean, 5),
                       util::format_fixed(summary.wrong_max, 5),
                       summary.correct_distance > 0.0 ? util::format_fixed(separation, 1) + "x"
                                                      : "exact",
                       summary.attack_succeeds ? "yes" : "no"});
    }

    std::cout << "Fig. 3 reproduction -- divide-and-conquer guesses on feature " << probe_feature
              << " (N=" << config.n_features << ", D=" << config.dim
              << ", correct mapping at pool slot " << correct_slot << ")\n\n";
    hdlock::bench::emit(args, "guess-curve summary (paper: correct ~0.005, wrong 0.01-0.025)",
                        table);

    // The raw per-candidate series behind the plot.
    util::TextTable curve_table({"candidate", "binary_distance", "nonbinary_distance"});
    const std::size_t step = args.csv ? 1 : std::max<std::size_t>(1, config.n_features / 16);
    for (std::size_t n = 0; n < curves[0].distances.size(); n += step) {
        curve_table.add_row({std::to_string(n), util::format_fixed(curves[0].distances[n], 5),
                             util::format_fixed(curves[1].distances[n], 5)});
    }
    if (!args.csv) {
        std::cout << "(guess curve subsampled every " << step << " candidates; --csv for all)\n";
    }
    hdlock::bench::emit(args, "guess curve", curve_table);
    return 0;
}
