/// \file bench_fig9.cpp
/// Compatibility wrapper over eval scenario "fig9": encoding time of HDLock
/// relative to the baseline on the parametric datapath model (L = 1 costs
/// 1.0x, the headline 1.21x two-layer overhead, linear growth,
/// dataset-independent curves), plus the software wall-clock cross-check.
/// The experiment lives in src/eval/scenarios/scenario_fig9.cpp.

#include "common.hpp"

int main(int argc, char** argv) {
    return hdlock::bench::scenario_bench_main(
        argc, argv, "fig9", "Fig. 9: relative encoding time vs. number of key layers L");
}
