/// \file bench_fig9.cpp
/// Reproduces Fig. 9: encoding time of HDLock relative to the baseline HDC
/// model, measured in clock cycles on the parametric datapath model that
/// stands in for the paper's Zynq UltraScale+ deployment (DESIGN.md §2).
///
/// Reproduced structural facts: L = 1 costs 1.0x (a permutation is a shifted
/// memory access), the curve grows linearly from L = 2 with the headline
/// 1.21x two-layer overhead, and the relative curves of all five benchmarks
/// coincide (the ratio is independent of N and D).
///
/// A software cross-check table is appended: wall-clock time to materialize
/// the Eq. 9 feature hypervectors (the work the FPGA streams per encode,
/// done once at construction in this library) also grows linearly in L,
/// while the per-sample software encode time is L-independent by design.

#include <iostream>

#include "common.hpp"
#include "core/locked_encoder.hpp"
#include "data/synthetic.hpp"
#include "hw/pipeline_model.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace hdlock;

struct SoftwareCost {
    double materialize_ms = 0.0;  ///< LockedEncoder construction (Eq. 9 products)
    double encode_us = 0.0;       ///< per-sample encode, averaged
};

SoftwareCost software_cost(std::size_t dim, std::size_t n_features, std::size_t n_layers,
                           std::uint64_t seed) {
    DeploymentConfig config;
    config.dim = dim;
    config.n_features = n_features;
    config.n_levels = 16;
    config.n_layers = n_layers;
    config.seed = seed;

    util::WallTimer timer;
    const Deployment deployment = provision(config);
    SoftwareCost cost;
    cost.materialize_ms = timer.elapsed_ms();

    const std::vector<int> levels(n_features, 1);
    constexpr int kRepeats = 20;
    timer.reset();
    for (int r = 0; r < kRepeats; ++r) {
        const auto encoded = deployment.encoder->encode(levels);
        if (encoded.dim() != dim) return cost;  // keep the optimizer honest
    }
    cost.encode_us = timer.elapsed_ms() * 1000.0 / kRepeats;
    return cost;
}

}  // namespace

int main(int argc, char** argv) {
    const auto args = hdlock::bench::parse_args(
        argc, argv, "Fig. 9: relative encoding time vs. number of key layers L");

    const hw::HwConfig hw_config;  // calibrated: II(2)/II(1) = 1.20 (~paper's 1.21)
    const std::size_t max_layers = 5;

    std::cout << "Fig. 9 reproduction -- encoding clock cycles relative to the unprotected "
                 "baseline (datapath model: width=" << hw_config.datapath_width
              << "b, ports=" << hw_config.memory_ports << ")\n\n";

    // --- The figure: one relative-time curve per benchmark.
    {
        std::vector<std::string> headers{"benchmark"};
        for (std::size_t layers = 1; layers <= max_layers; ++layers) {
            headers.push_back("L=" + std::to_string(layers));
        }
        util::TextTable table(headers);
        for (const auto& spec : data::paper_benchmarks()) {
            const auto curve = hw::relative_time_curve(hw_config, 10000, spec.n_features,
                                                       max_layers);
            std::vector<std::string> row{spec.name};
            for (const double value : curve) row.push_back(util::format_fixed(value, 3));
            table.add_row(std::move(row));
        }
        hdlock::bench::emit(args, "relative encoding time (paper: 1.0 at L=1, 1.21 at L=2, "
                                  "linear, dataset-independent)",
                            table);
    }

    // --- Cycle breakdown for MNIST at each L (where the ratio comes from).
    {
        util::TextTable table({"L", "cycles", "fetch", "accumulate", "binarize", "fill",
                               "relative", "us@200MHz"});
        for (std::size_t layers = 0; layers <= max_layers; ++layers) {
            const hw::EncoderPipelineModel model(hw_config, 10000, 784, layers);
            const auto cost = model.encode_cost();
            table.add_row({layers == 0 ? "base" : std::to_string(layers),
                           std::to_string(cost.cycles), std::to_string(cost.fetch_beats),
                           std::to_string(cost.accumulate_beats),
                           std::to_string(cost.binarize_beats), std::to_string(cost.fill_beats),
                           util::format_fixed(model.relative_to_baseline(), 3),
                           util::format_fixed(cost.microseconds(hw_config.clock_mhz), 1)});
        }
        hdlock::bench::emit(args, "cycle breakdown, MNIST (N=784, D=10,000)", table);
    }

    // --- Software cross-check (wall clock, this machine).
    {
        const std::size_t dim = args.quick ? 2048 : 10000;
        const std::size_t n_features = args.quick ? 128 : 784;
        util::TextTable table({"L", "materialize_ms", "encode_us_per_sample"});
        for (std::size_t layers = 1; layers <= max_layers; ++layers) {
            const auto cost = software_cost(dim, n_features, layers, args.seed);
            table.add_row({std::to_string(layers), util::format_fixed(cost.materialize_ms, 2),
                           util::format_fixed(cost.encode_us, 1)});
        }
        hdlock::bench::emit(args,
                            "software cross-check: Eq. 9 materialization scales with L, "
                            "per-sample encode does not",
                            table);
    }
    return 0;
}
