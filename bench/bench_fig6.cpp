/// \file bench_fig6.cpp
/// Compatibility wrapper over eval scenario "fig6": the Fig. 5 experiment
/// with the non-binary oracle and the cosine criterion — the correct guess
/// reaches cosine = 1, any single wrong parameter collapses it to ~0.  The
/// experiment lives in src/eval/scenarios/scenario_lock_sweep.cpp.

#include "common.hpp"

int main(int argc, char** argv) {
    return hdlock::bench::scenario_bench_main(
        argc, argv, "fig6",
        "Fig. 6: single-parameter sweeps against HDLock, non-binary HDC (cosine criterion)");
}
