/// \file bench_fig6.cpp
/// Reproduces Fig. 6: HDLock security validation on the *non-binary* HDC
/// model — the Fig. 5 experiment with the cosine criterion.
///
/// Without binarization the observed difference H^1 - H^M equals the probed
/// feature's term exactly, so the correct guess reaches cosine = 1 while any
/// single wrong parameter collapses the similarity to ~0.  The conclusion is
/// the same as Fig. 5: one wrong parameter ruins the mapping, the joint
/// (D*P)^L search stands.

#include "lock_sweep_common.hpp"

int main(int argc, char** argv) {
    return hdlock::bench::run_lock_sweep_bench(
        argc, argv, /*binary_oracle=*/false, /*cosine_view=*/true,
        "Fig. 6: single-parameter sweeps against HDLock, non-binary HDC (cosine criterion)");
}
