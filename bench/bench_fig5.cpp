/// \file bench_fig5.cpp
/// Compatibility wrapper over eval scenario "fig5": HDLock security
/// validation on the binary HDC model (Sec. 4.2, Eq. 11-13) — sweep one
/// sub-key parameter with the other three known; the correct guess scores
/// ~0 and every wrong guess sits at the ~0.5 noise floor, so the joint
/// (D*P)^L search stands.  The experiment lives in
/// src/eval/scenarios/scenario_lock_sweep.cpp.

#include "common.hpp"

int main(int argc, char** argv) {
    return hdlock::bench::scenario_bench_main(
        argc, argv, "fig5",
        "Fig. 5: single-parameter sweeps against HDLock, binary HDC (Hamming criterion)");
}
