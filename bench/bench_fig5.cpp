/// \file bench_fig5.cpp
/// Reproduces Fig. 5: HDLock security validation on the *binary* HDC model.
///
/// Worst case for the defender: the attacker knows the value mapping and
/// three of the four sub-key parameters of the probed feature (MNIST scale,
/// N = P = 784, D = 10,000, L = 2) and sweeps the last parameter, scoring
/// each guess by the Hamming mismatch on the differing-index set I
/// (Eq. 11-13).  The paper's finding, reproduced here: the correct guess
/// scores ~0 and every wrong guess sits at the ~0.5 noise floor, so the
/// attacker cannot shortcut the joint (D*P)^L search.

#include "lock_sweep_common.hpp"

int main(int argc, char** argv) {
    return hdlock::bench::run_lock_sweep_bench(
        argc, argv, /*binary_oracle=*/true, /*cosine_view=*/false,
        "Fig. 5: single-parameter sweeps against HDLock, binary HDC (Hamming criterion)");
}
