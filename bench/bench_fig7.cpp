/// \file bench_fig7.cpp
/// Reproduces Fig. 7: the closed-form adversarial guess counts (Sec. 5.2).
///
///  (a) guesses vs. dimension D and pool size P at L = 2 (the paper's
///      surface plot, rendered as a D x P grid);
///  (b) guesses vs. the number of key layers L for P in {100,300,500,700}
///      at D = 10,000 (log-scale y-axis in the paper; log10 values here);
///  plus the Sec. 4.2 / 5.2 headline numbers for MNIST.
///
/// Counts overflow doubles well inside the plotted range, so everything is
/// computed in log10 space (core/complexity.hpp).

#include <cmath>
#include <iostream>
#include <vector>

#include "attack/lock_attack.hpp"
#include "common.hpp"
#include "core/complexity.hpp"
#include "core/locked_encoder.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
    using namespace hdlock;
    const auto args = bench::parse_args(
        argc, argv, "Fig. 7: number of reasoning guesses vs. D, P and L (closed form)");

    const std::size_t n_features = 784;  // MNIST, as in Sec. 4.2

    std::cout << "Fig. 7 reproduction -- reasoning complexity N*(D*P)^L, N=" << n_features
              << "\n\n";

    // --- (a): D x P grid at L = 2.  Cells are log10(guesses).
    {
        const std::vector<std::size_t> pools{100, 300, 500, 700, 900, 1100, 1300, 1500};
        std::vector<std::string> headers{"D \\ P"};
        for (const auto pool : pools) headers.push_back(std::to_string(pool));
        util::TextTable table(headers);
        for (std::size_t dim = 2000; dim <= 14000; dim += 2000) {
            std::vector<std::string> row{std::to_string(dim)};
            for (const auto pool : pools) {
                row.push_back(util::format_fixed(
                    complexity::log10_guesses(n_features, dim, pool, /*n_layers=*/2), 2));
            }
            table.add_row(std::move(row));
        }
        bench::emit(args, "(a) log10 guesses vs. D and P at L = 2", table);
    }

    // --- (b): L curves for the paper's four pool sizes at D = 10,000.
    {
        const std::vector<std::size_t> pools{100, 300, 500, 700};
        std::vector<std::string> headers{"L"};
        for (const auto pool : pools) headers.push_back("P = " + std::to_string(pool));
        util::TextTable table(headers);
        for (std::size_t layers = 1; layers <= 5; ++layers) {
            std::vector<std::string> row{std::to_string(layers)};
            for (const auto pool : pools) {
                row.push_back(util::format_fixed(
                    complexity::log10_guesses(n_features, 10000, pool, layers), 2));
            }
            table.add_row(std::move(row));
        }
        bench::emit(args, "(b) log10 guesses vs. key layers L at D = 10,000", table);
    }

    // --- Headline numbers (Sec. 4.2, Sec. 5.2, MNIST with P = N = 784).
    {
        util::TextTable table({"configuration", "guesses", "paper"});
        const auto row = [&](const char* name, std::size_t layers, const char* paper) {
            table.add_row({name,
                           util::format_pow10(
                               complexity::log10_guesses(n_features, 10000, 784, layers)),
                           paper});
        };
        row("unprotected baseline (N^2)", 0, "6.15e+05");
        row("one-layer key (N*D*P)", 1, "6.15e+09");
        row("two-layer key (N*(D*P)^2)", 2, "4.81e+16");
        table.add_row({"two-layer gain over baseline",
                       util::format_pow10(
                           complexity::security_gain_log10(n_features, 10000, 784, 2)),
                       "7.82e+10"});
        bench::emit(args, "headline complexity numbers (MNIST, P = N = 784, D = 10,000)", table);
    }

    // --- Empirical validation: the joint search is actually run on toy
    // configurations; the measured per-feature guess count must equal
    // (D*P)^L exactly, and the per-guess cost extrapolates the closed form
    // into wall-clock at paper scale.
    {
        struct ToyCase {
            std::size_t dim, pool, layers;
        };
        // L = 2 needs a few hundred dimensions: below that the flipped-index
        // set I is so small that thousands of wrong sub-keys match it by
        // chance and the toy search under-determines the key.
        const std::vector<ToyCase> cases = args.quick
                                               ? std::vector<ToyCase>{{128, 3, 1}, {320, 4, 2}}
                                               : std::vector<ToyCase>{{128, 3, 1},
                                                                      {256, 4, 1},
                                                                      {384, 3, 2},
                                                                      {320, 4, 2}};
        util::TextTable table({"D", "P", "L", "guesses", "(D*P)^L", "recovered", "seconds",
                               "extrapolated@MNIST"});
        for (const auto& toy : cases) {
            DeploymentConfig config;
            config.dim = toy.dim;
            config.n_features = 4;
            config.pool_size = toy.pool;
            config.n_levels = 4;
            config.n_layers = toy.layers;
            config.seed = args.seed;
            const Deployment deployment = provision(config);
            const attack::EncodingOracle oracle(deployment.encoder);

            util::WallTimer timer;
            const auto result = attack::exhaustive_feature_attack(
                *deployment.store, oracle, deployment.secure->value_mapping(), /*feature=*/0,
                toy.layers, /*binary_oracle=*/true);
            const double seconds = timer.elapsed_seconds();

            const double expected = std::pow(static_cast<double>(toy.dim * toy.pool),
                                             static_cast<double>(toy.layers));
            const bool recovered =
                result.recovered_feature_hv == deployment.encoder->feature_hv(0);
            // Wall-clock at paper scale = measured per-guess cost scaled to
            // N * (D*P)^L guesses with D-proportional per-guess work.
            const double per_guess = seconds / static_cast<double>(result.guesses);
            const double paper_log10_seconds =
                std::log10(per_guess * 10000.0 / static_cast<double>(toy.dim)) +
                complexity::log10_guesses(784, 10000, 784, toy.layers);
            table.add_row({std::to_string(toy.dim), std::to_string(toy.pool),
                           std::to_string(toy.layers), std::to_string(result.guesses),
                           util::format_fixed(expected, 0), recovered ? "yes" : "no",
                           util::format_fixed(seconds, 3),
                           util::format_pow10(paper_log10_seconds) + " s"});
        }
        bench::emit(args,
                    "empirical joint search on toy configs (guess counts match the closed "
                    "form; extrapolation shows why the full attack is infeasible)",
                    table);
    }
    return 0;
}
