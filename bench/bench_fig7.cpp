/// \file bench_fig7.cpp
/// Compatibility wrapper over eval scenario "fig7" (Sec. 5.2): closed-form
/// adversarial guess counts vs. D, P and L, the headline MNIST numbers, and
/// the empirical toy-scale joint searches validating the (D*P)^L formula.
/// The experiment lives in src/eval/scenarios/scenario_fig7.cpp.

#include "common.hpp"

int main(int argc, char** argv) {
    return hdlock::bench::scenario_bench_main(
        argc, argv, "fig7",
        "Fig. 7: number of reasoning guesses vs. D, P and L (closed form + toy searches)");
}
